"""Redundancy-aware TGNN inference (TGOpt-style, Wang & Mendis 2023).

The paper's related work cites TGOpt's inference optimizations —
de-duplication, memoization and pre-computation — noting they do not apply
to *training*.  They do apply to serving a trained DistTGL model, so the
library ships an inference engine implementing the three ideas on our stack:

* **de-duplication** — identical ``(node, time)`` queries inside a batch are
  embedded once (common when ranking many candidate destinations for one
  source at one timestamp);
* **time-encoding memoization** — Φ(Δt) is evaluated once per *unique* Δt in
  the batch (Δt values repeat heavily because edges cluster in bursts);
* **pre-computation** — the static-memory projection ``W_s · static`` is a
  fixed linear map once training ends; it is materialised per node up front.

The engine also maintains streaming state: :meth:`observe` folds new events
into the node memory/mailbox (no gradients), mirroring online serving.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..graph.prep import BatchPrep
from ..graph.sampler import RecentNeighborSampler
from ..graph.temporal_graph import TemporalGraph
from ..memory.mailbox import Mailbox
from ..memory.node_memory import NodeMemory
from ..models.decoders import LinkPredictor
from ..models.tgn import TGN, DirectMemoryView, tape_inputs, tape_ready, tape_signature
from ..nn import StepCompiler, Tensor, fused_enabled
from ..utils import stable_sigmoid


@dataclass
class InferenceStats:
    """Counters for the redundancy optimizations (ablation bench reads them)."""

    queries: int = 0
    unique_queries: int = 0
    time_encodings_requested: int = 0
    time_encodings_computed: int = 0

    @property
    def dedup_ratio(self) -> float:
        return 1.0 - self.unique_queries / self.queries if self.queries else 0.0

    @property
    def memo_ratio(self) -> float:
        if not self.time_encodings_requested:
            return 0.0
        return 1.0 - self.time_encodings_computed / self.time_encodings_requested


class InferenceEngine:
    """Batched temporal inference over a trained TGN."""

    def __init__(
        self,
        model: TGN,
        graph: TemporalGraph,
        decoder: Optional[LinkPredictor] = None,
        sampler: Optional[RecentNeighborSampler] = None,
        dedup: bool = True,
        memoize_time: bool = True,
        append_on_observe: bool = True,
        prep_cache: int = 64,
        compile: bool = False,
    ) -> None:
        self.model = model
        self.graph = graph
        self.decoder = decoder
        self.sampler = sampler or RecentNeighborSampler(graph, k=model.config.num_neighbors)
        # all serving-side batch preparation flows through the shared
        # pipeline; the LRU pays off when hot candidate sets repeat and is
        # version-keyed, so observe()'s graph appends invalidate naturally
        self.prep = BatchPrep(
            self.sampler,
            edge_dim=model.config.edge_dim,
            cache_size=prep_cache,
        )
        self.dedup = dedup
        self.memoize_time = memoize_time
        # Streaming freshness: observe() appends events to the graph so the
        # sampler sees them.  Disable when replaying events the graph already
        # contains (ablation benches) or when a ServingCluster appends once
        # on behalf of k replicas.
        self.append_on_observe = append_on_observe
        self.memory = NodeMemory(graph.num_nodes, model.config.memory_dim)
        self.mailbox = Mailbox(
            graph.num_nodes, model.config.memory_dim, edge_dim=model.config.edge_dim
        )
        self.view = DirectMemoryView(self.memory, self.mailbox)
        self.stats = InferenceStats()
        # step compiler for the embed hot path (spec opt-in, REPRO_COMPILE
        # overrides).  Serving batch shapes repeat heavily (fixed candidate
        # counts), so a handful of taped programs covers the steady state.
        env = os.environ.get("REPRO_COMPILE", "").strip().lower()
        compile_on = compile if env == "" else env not in ("0", "false", "off")
        self._compiler = StepCompiler(maxsize=64, name="serve") if compile_on else None
        # pre-computation: the static projection is frozen after training
        self._static_proj_table: Optional[np.ndarray] = None
        if model.has_static_memory:
            static = Tensor(model._static_table)
            self._static_proj_table = model.static_proj(static).data.copy()
        self._install_time_memo()

    # ------------------------------------------------------------- plumbing
    def _install_time_memo(self) -> None:
        """Wrap the model's time encoder with a per-call memo on unique Δt."""
        encoder = self.model.time_encoder
        # Guard against double-wrapping: reset() may run while the memoized
        # forward is swapped in (or another engine on the same model left its
        # wrapper installed); capturing it as `original` would nest memo
        # wrappers unboundedly.  Unwrap back to the true encoder forward.
        original = encoder.forward
        while getattr(original, "_repro_time_memo", False):
            original = original.__wrapped__
        if encoder.forward is not original:
            encoder.forward = original
        stats = self.stats
        memoize = self.memoize_time

        def memoized(delta_t: np.ndarray):
            arr = np.asarray(delta_t, dtype=np.float32)
            stats.time_encodings_requested += arr.size
            if not memoize or arr.size == 0:
                stats.time_encodings_computed += arr.size
                return original(arr)
            flat = arr.reshape(-1)
            uniq, inverse = np.unique(flat, return_inverse=True)
            stats.time_encodings_computed += uniq.size
            enc = original(uniq)
            return Tensor(enc.data[inverse].reshape(*arr.shape, encoder.dim))

        memoized._repro_time_memo = True
        memoized.__wrapped__ = original
        self._memoized_forward = memoized
        self._original_forward = original

    def _swap_encoder(self, on: bool) -> None:
        self.model.time_encoder.forward = (
            self._memoized_forward if on else self._original_forward
        )

    # ----------------------------------------------------------------- state
    def observe(self, src: np.ndarray, dst: np.ndarray, times: np.ndarray,
                edge_feats: Optional[np.ndarray] = None) -> None:
        """Fold a chronological batch of new events into the serving state.

        With ``append_on_observe=True`` (the default) the events are also
        appended to the graph so the neighbor sampler sees them — observed
        events are treated as *new*.  Replaying events the graph already
        contains would therefore duplicate its edges (and, for historic
        timestamps, void ``chronological_split``); construct the engine
        with ``append_on_observe=False`` for replay/ablation use.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        nodes = np.concatenate([src, dst])
        query_times = np.concatenate([times, times])
        prep = self.prep.prepare(nodes, query_times, self.view)
        _, state = self.model.forward_prepared(prep)
        wb = self.model.make_writeback(src, dst, times, state, state,
                                       edge_feats=edge_feats)
        TGN.apply_writeback(wb, self.memory, self.mailbox)
        if self.append_on_observe:
            # make the events visible to the neighbor sampler (freshness);
            # embeddings above used the pre-batch graph, matching the
            # strictly-before-t sampling rule either way.
            self.graph.append_events(src, dst, times, edge_feats)

    def reset(self) -> None:
        self.memory.reset()
        self.mailbox.reset()
        self.stats = InferenceStats()
        self._install_time_memo()

    def refresh_weights(self) -> None:
        """Re-derive weight-dependent precomputations after a hot swap.

        ``Module.from_bytes`` overwrites parameter arrays in place, so
        compiled tapes and the time-memo wrapper stay valid — but the
        static-projection table was materialised from the *old* weights
        and must be rebuilt.  Call after swapping new weights into
        ``self.model`` / ``self.decoder``.
        """
        if self.model.has_static_memory:
            static = Tensor(self.model._static_table)
            self._static_proj_table = self.model.static_proj(static).data.copy()

    # ----------------------------------------------------------------- query
    def embed(self, nodes: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Embeddings for (node, time) queries with dedup + memoization."""
        nodes = np.asarray(nodes, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        self.stats.queries += len(nodes)

        if self.dedup and len(nodes):
            keys = np.stack([nodes.astype(np.float64), times], axis=1)
            uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
            q_nodes = uniq[:, 0].astype(np.int64)
            q_times = uniq[:, 1]
        else:
            q_nodes, q_times, inverse = nodes, times, None
        self.stats.unique_queries += len(q_nodes)

        if self._compiler is not None and tape_ready(self.model):
            # compiled embed: the taped forward binds Δt as a named input, so
            # the memoizing encoder wrapper (whose unique/inverse index maps
            # are data-dependent) stays swapped out.  Φ is elementwise over
            # Δt, so memoized and raw encodings are bit-identical — only the
            # memo-hit counters go unreported on this path.
            prep = self.prep.prepare(q_nodes, q_times, self.view)
            out = self._embed_compiled(prep)
        else:
            self._swap_encoder(True)
            try:
                prep = self.prep.prepare(q_nodes, q_times, self.view)
                h, _ = self.model.forward_prepared(prep)
            finally:
                self._swap_encoder(False)
            out = h.data
        return out[inverse] if inverse is not None else out

    def _embed_compiled(self, prep) -> np.ndarray:
        """Forward-only tape over the prepared embed pass (bitwise equal to
        the eager forward; eager fallback on any replay fault)."""
        compiler = self._compiler
        key = ("serve", fused_enabled()) + tape_signature(prep)
        program = compiler.lookup(key)
        if program is not None:
            out = compiler.replay(
                key, program, tape_inputs("pos", prep), backward=False
            )
            if out is not None:
                return out
            return self.model.forward_prepared(prep)[0].data
        if compiler.wants_trace(key):
            with compiler.trace(key, tape_inputs("pos", prep)) as handle:
                h, _ = self.model.forward_prepared(prep)
                handle.root = h
            return h.data
        return self.model.forward_prepared(prep)[0].data

    def embed_pairs(
        self, left: np.ndarray, right: np.ndarray, times: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Embed both endpoints of (left, right, t) pairs in one fused batch.

        The micro-batcher's flush path: one BatchPrep preparation covers
        every endpoint of every queued pair, so dedup and time-encoding
        memoization amortize across all clients in the batch.
        """
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        emb = self.embed(
            np.concatenate([left, right]), np.concatenate([times, times])
        )
        n = len(left)
        return emb[:n], emb[n:]

    def rank_candidates(
        self, src: int, candidates: np.ndarray, at_time: float
    ) -> np.ndarray:
        """Scores for ``src -> candidate`` links at ``at_time`` (higher=better).

        The classic serving pattern: one source embedded once (dedup makes
        the repeated src queries free), candidates batched.
        """
        if self.decoder is None:
            raise ValueError("engine constructed without a decoder")
        candidates = np.asarray(candidates, dtype=np.int64)
        n = len(candidates)
        h_src, h_dst = self.embed_pairs(
            np.full(n, src, dtype=np.int64),
            candidates,
            np.full(n, at_time, dtype=np.float64),
        )
        return self.decoder(Tensor(h_src), Tensor(h_dst)).data

    def predict_links(
        self, src: np.ndarray, dst: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        """P(edge) for each (src, dst, t) triple."""
        if self.decoder is None:
            raise ValueError("engine constructed without a decoder")
        h_src, h_dst = self.embed_pairs(src, dst, times)
        logits = self.decoder(Tensor(h_src), Tensor(h_dst)).data
        return stable_sigmoid(logits)
