"""Merging per-rank trace files into one multi-lane timeline.

Each process in a run writes its own ``trace-<lane>.jsonl``; this module
aligns them onto one time axis and produces ``trace.merged.jsonl`` plus a
structural summary (per-lane phase breakdown, sync fraction, recovery
timeline) that ``repro.cli trace`` renders.

Alignment: every lane's header carries a ``clock_sync`` metadata line with
``(epoch_anchor, mono_anchor)`` sampled together at tracer start.  Span
``ts`` values are relative to that lane's ``mono_anchor``; shifting lane
``L`` by ``epoch_anchor_L - min(epoch_anchor)`` puts every lane on a shared
axis whose zero is the earliest tracer start, robust to ranks spawning
seconds apart (elastic respawns included) and to wall-clock steps after
start.

Robustness: a SIGKILLed rank leaves a trace that may end mid-line; readers
skip unparseable lines rather than failing, so partial traces still merge.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

MERGED_NAME = "trace.merged.jsonl"

#: span names whose time counts toward the lane's synchronization cost
SYNC_CATEGORY = "sync"

#: recovery-related events surfaced on the summary timeline
RECOVERY_SPANS = ("rollback", "respawn", "park", "machine-lost", "agent-join")

#: fabric lane names carry their host: ``h<machine>.rank<rank>``
_HOST_LANE_RE = re.compile(r"^h(\d+)\.")


def read_trace_file(path: Union[str, Path]) -> List[dict]:
    """Parse one JSONL trace file, skipping corrupt/truncated lines."""
    events: List[dict] = []
    try:
        with open(path, "r", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # torn tail from a killed process
                if isinstance(event, dict):
                    events.append(event)
    except OSError:
        return []
    return events


def _lane_files(trace_dir: Path) -> List[Path]:
    return sorted(
        p for p in trace_dir.glob("trace-*.jsonl") if p.name != MERGED_NAME
    )


def merge_trace_dir(
    trace_dir: Union[str, Path], out: Optional[Union[str, Path]] = None
) -> Optional[Path]:
    """Merge every ``trace-*.jsonl`` under ``trace_dir`` into one timeline.

    Returns the merged file path (default ``<trace_dir>/trace.merged.jsonl``)
    or ``None`` when the directory holds no trace files.  Metadata lines
    come first, then events sorted by aligned timestamp.
    """
    trace_dir = Path(trace_dir)
    files = _lane_files(trace_dir)
    if not files:
        return None
    merged = merge_events([read_trace_file(p) for p in files])
    out_path = Path(out) if out is not None else trace_dir / MERGED_NAME
    with open(out_path, "w") as fh:
        for event in merged:
            fh.write(json.dumps(event) + "\n")
    return out_path


def merge_events(lanes: Iterable[List[dict]]) -> List[dict]:
    """Align and interleave per-lane event lists into one sorted timeline.

    Lanes missing a ``clock_sync`` header (nothing flushed before death)
    fall back to a zero offset — their events stay, relatively ordered.
    """
    lanes = [lane for lane in lanes if lane]
    anchors: Dict[int, float] = {}
    for idx, lane in enumerate(lanes):
        for event in lane:
            if event.get("ph") == "M" and event.get("name") == "clock_sync":
                args = event.get("args", {})
                try:
                    anchors[idx] = float(args["epoch_anchor"])
                except (KeyError, TypeError, ValueError):
                    pass
                break
    base = min(anchors.values()) if anchors else 0.0

    meta: List[dict] = []
    spans: List[dict] = []
    for idx, lane in enumerate(lanes):
        offset_us = (anchors.get(idx, base) - base) * 1e6
        for event in lane:
            if event.get("ph") == "M":
                meta.append(event)
                continue
            event = dict(event)
            try:
                event["ts"] = round(float(event.get("ts", 0.0)) + offset_us, 1)
            except (TypeError, ValueError):
                event["ts"] = 0.0
            spans.append(event)
    spans.sort(key=lambda e: (e.get("ts", 0.0), e.get("pid", 0)))
    return meta + spans


def summarize_trace(events: List[dict]) -> dict:
    """Structural summary of a merged timeline.

    Returns::

        {
          "lanes": {pid: {"lane", "events", "wall_s", "sync_s",
                          "sync_frac", "phases": {name: {count, total_s}}}},
          "phases": {name: {"count", "total_s"}},        # across all lanes
          "hosts": {host: {"lanes", "events", "wall_s", "sync_s",
                           "sync_frac"}},    # multi-host (fabric) runs only
          "recovery": [ {"ts_s", "name", "lane", ...}, ...],
          "events": <int>,
        }

    Fabric runs prefix their lane names with the host id
    (``h<machine>.rank<rank>``, clock-aligned across hosts by the agents'
    NTP-style offset); any such lanes are additionally rolled up per host
    under ``hosts`` — ``wall_s``/``sync_s`` are the host's slowest lane
    (the rank that paces the machine), matching the bench's
    max-across-ranks convention.

    ``sync_s`` sums spans tagged ``args.cat == "sync"`` (barriers,
    allreduce, serial sections) **minus** spans tagged ``cat == "commit"``
    (write-backs and commit-slab writes are compute, not waiting) — the
    exact formula the runtime bench uses — clamped at zero; ``wall_s`` is
    the lane's first-to-last event extent, so ``sync_frac`` is directly
    comparable to ``BENCH_runtime.json``'s column.
    """
    lane_names: Dict[int, str] = {}
    lanes: Dict[int, dict] = {}
    overall: Dict[str, dict] = {}
    recovery: List[dict] = []

    for event in events:
        pid = event.get("pid", 0)
        if event.get("ph") == "M":
            if event.get("name") == "process_name":
                lane_names[pid] = event.get("args", {}).get("name", f"pid{pid}")
            continue
        info = lanes.setdefault(
            pid,
            {
                "events": 0,
                "sync_s": 0.0,
                "commit_s": 0.0,
                "first_ts": None,
                "last_ts": 0.0,
                "phases": {},
            },
        )
        info["events"] += 1
        name = event.get("name", "?")
        ts = float(event.get("ts", 0.0))
        dur = float(event.get("dur", 0.0))
        if info["first_ts"] is None or ts < info["first_ts"]:
            info["first_ts"] = ts
        info["last_ts"] = max(info["last_ts"], ts + dur)
        args = event.get("args", {}) or {}

        phase = info["phases"].setdefault(name, {"count": 0, "total_s": 0.0})
        phase["count"] += 1
        phase["total_s"] += dur / 1e6
        agg = overall.setdefault(name, {"count": 0, "total_s": 0.0})
        agg["count"] += 1
        agg["total_s"] += dur / 1e6

        if args.get("cat") == SYNC_CATEGORY:
            info["sync_s"] += dur / 1e6
        elif args.get("cat") == "commit":
            info["commit_s"] += dur / 1e6
        if name in RECOVERY_SPANS:
            entry = {"ts_s": ts / 1e6, "name": name, "pid": pid}
            entry.update({k: v for k, v in args.items() if k != "cat"})
            if dur:
                entry["dur_s"] = dur / 1e6
            recovery.append(entry)

    out_lanes: Dict[int, dict] = {}
    for pid, info in sorted(lanes.items()):
        first = info["first_ts"] or 0.0
        wall = max(info["last_ts"] - first, 0.0) / 1e6
        sync = max(info["sync_s"] - info["commit_s"], 0.0)
        out_lanes[pid] = {
            "lane": lane_names.get(pid, f"pid{pid}"),
            "events": info["events"],
            "wall_s": wall,
            "sync_s": sync,
            "commit_s": info["commit_s"],
            "sync_frac": sync / wall if wall > 0 else 0.0,
            "phases": info["phases"],
        }
    hosts: Dict[str, dict] = {}
    for lane in out_lanes.values():
        m = _HOST_LANE_RE.match(lane["lane"])
        if m is None:
            continue
        host = f"h{m.group(1)}"
        agg = hosts.setdefault(
            host, {"lanes": 0, "events": 0, "wall_s": 0.0, "sync_s": 0.0}
        )
        agg["lanes"] += 1
        agg["events"] += lane["events"]
        agg["wall_s"] = max(agg["wall_s"], lane["wall_s"])
        agg["sync_s"] = max(agg["sync_s"], lane["sync_s"])
    for agg in hosts.values():
        agg["sync_frac"] = agg["sync_s"] / agg["wall_s"] if agg["wall_s"] > 0 else 0.0

    recovery.sort(key=lambda e: e["ts_s"])
    return {
        "lanes": out_lanes,
        "phases": overall,
        "hosts": dict(sorted(hosts.items())),
        "recovery": recovery,
        "events": sum(v["events"] for v in lanes.values()),
    }


def summarize_trace_file(path: Union[str, Path]) -> dict:
    return summarize_trace(read_trace_file(path))


def format_summary(summary: dict) -> str:
    """Human-readable rendering of :func:`summarize_trace` for the CLI."""
    lines: List[str] = []
    lines.append(f"events: {summary['events']}  lanes: {len(summary['lanes'])}")
    hosts = summary.get("hosts") or {}
    if hosts:
        lines.append("\nhosts:")
        for host, agg in hosts.items():
            lines.append(
                f"  {host}: {agg['lanes']} lanes, {agg['events']} events, "
                f"wall {agg['wall_s']:.3f}s, sync {agg['sync_s']:.3f}s "
                f"(frac {agg['sync_frac']:.3f})"
            )
    for pid, lane in summary["lanes"].items():
        lines.append(
            f"\nlane {lane['lane']} (pid {pid}): {lane['events']} events, "
            f"wall {lane['wall_s']:.3f}s, sync {lane['sync_s']:.3f}s "
            f"(frac {lane['sync_frac']:.3f})"
        )
        top = sorted(
            lane["phases"].items(), key=lambda kv: kv[1]["total_s"], reverse=True
        )
        for name, st in top[:12]:
            lines.append(
                f"  {name:<16} x{st['count']:<6} {st['total_s']:.4f}s"
            )
    if summary["recovery"]:
        lines.append("\nrecovery timeline:")
        for ev in summary["recovery"]:
            extras = ", ".join(
                f"{k}={v}" for k, v in ev.items() if k not in ("ts_s", "name", "pid")
            )
            lines.append(
                f"  t={ev['ts_s']:.3f}s  {ev['name']:<8} pid={ev['pid']}"
                + (f"  {extras}" if extras else "")
            )
    else:
        lines.append("\nrecovery timeline: (no recovery events)")
    return "\n".join(lines)
