"""Span tracing: nestable, thread-safe phase spans per process.

One :class:`Tracer` records *spans* — named intervals such as ``prep``,
``forward``, ``allreduce`` — into an append-only in-process buffer and
dumps them as Chrome trace-event-format JSONL (one event object per line,
loadable by ``chrome://tracing`` / Perfetto after wrapping in a list).
Every process in a run writes its own ``trace-<lane>.jsonl`` file; the
merge step (:mod:`repro.obs.merge`) aligns the per-process monotonic
clocks and interleaves the lanes into one timeline.

Clock model: span timestamps come from ``time.monotonic()`` (immune to
wall-clock steps), and each tracer records a one-shot *anchor pair* —
``(epoch_anchor, mono_anchor)`` sampled together at construction — in a
``clock_sync`` metadata line.  The merge shifts each lane by
``epoch_anchor - mono_anchor`` so independently-started processes land on
one shared axis without any cross-process clock protocol.

Tracing is **off by default**.  The module-level :func:`span` /
:func:`instant` helpers are the instrumentation points scattered through
the hot paths; while no tracer is installed they cost one global load and
a ``None`` check and return a shared no-op context manager — cheap enough
to leave in the per-batch training loop (see the overhead guard in
``tests/test_obs_trace.py``).  Install a tracer with :func:`configure`
(or export ``REPRO_TRACE_DIR``); spans then also fold their durations
into ``phase/<name>`` counters of the global metrics registry, which is
how the benches source per-phase columns from telemetry.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

ENV_TRACE_DIR = "REPRO_TRACE_DIR"

#: flush the buffer to disk once it holds this many events (file-backed
#: tracers only) so long runs stay memory-bounded
AUTO_FLUSH_EVENTS = 8192


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span: records its duration on exit."""

    __slots__ = ("tracer", "name", "args", "t0")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        self.t0 = time.monotonic()
        return self

    def __exit__(self, *exc) -> bool:
        self.tracer._record(self.name, self.t0, time.monotonic() - self.t0, self.args)
        return False


class Tracer:
    """Per-process span recorder with an append-only buffer.

    Parameters
    ----------
    rank:
        Lane id; becomes the Chrome ``pid`` so every rank renders as its
        own row.  The launcher uses ``world`` for the supervisor lane.
    lane:
        Human-readable lane name (``rank0``, ``supervisor``); defaults to
        ``rank<rank>``.
    path:
        Destination JSONL file.  :meth:`flush` appends buffered events
        there (metadata header first), so a killed process leaves every
        previously-flushed span on disk — partial traces merge fine.
        ``None`` keeps events in memory only (:meth:`events`).
    registry:
        A :class:`repro.obs.metrics.MetricsRegistry` whose
        ``phase/<name>`` counters accumulate span durations (pass ``None``
        to disable); defaults to the global registry.
    """

    def __init__(
        self,
        rank: int = 0,
        lane: Optional[str] = None,
        path: Optional[Union[str, Path]] = None,
        registry=None,
    ) -> None:
        from .metrics import get_registry

        self.rank = int(rank)
        self.lane = lane if lane is not None else f"rank{self.rank}"
        self.path = Path(path) if path is not None else None
        self.registry = registry if registry is not None else get_registry()
        # the anchor pair: sampled back-to-back so epoch - mono is the
        # lane's clock offset for merge-time alignment
        self.mono_anchor = time.monotonic()
        self.epoch_anchor = time.time()
        self._buffer: List[tuple] = []
        self._lock = threading.Lock()
        self._tids: Dict[int, int] = {}
        self._wrote_header = False

    # ------------------------------------------------------------- recording
    def span(self, name: str, **args) -> _Span:
        """Context manager recording one complete ("X") span."""
        return _Span(self, name, args)

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration instant event."""
        self._record(name, time.monotonic(), None, args)

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def _record(self, name: str, t0: float, dur: Optional[float], args: dict) -> None:
        # list.append is atomic under the GIL; the lock only guards swaps
        self._buffer.append((name, self._tid(), t0, dur, args))
        if dur is not None and self.registry is not None:
            self.registry.counter(f"phase/{name}").add(dur)
        if self.path is not None and len(self._buffer) >= AUTO_FLUSH_EVENTS:
            self.flush()

    # ----------------------------------------------------------------- output
    def _header_events(self) -> List[dict]:
        return [
            {
                "ph": "M",
                "name": "process_name",
                "pid": self.rank,
                "args": {"name": self.lane},
            },
            {
                "ph": "M",
                "name": "clock_sync",
                "pid": self.rank,
                "args": {
                    "epoch_anchor": self.epoch_anchor,
                    "mono_anchor": self.mono_anchor,
                    "lane": self.lane,
                },
            },
        ]

    def _to_event(self, record: tuple) -> dict:
        name, tid, t0, dur, args = record
        event = {
            "name": name,
            "ph": "X" if dur is not None else "i",
            # Chrome wants microseconds; ts is relative to this lane's
            # mono anchor — merge adds the lane offset
            "ts": round((t0 - self.mono_anchor) * 1e6, 1),
            "pid": self.rank,
            "tid": tid,
        }
        if dur is not None:
            event["dur"] = round(dur * 1e6, 1)
        else:
            event["s"] = "p"
        if args:
            event["args"] = args
        return event

    def events(self, include_header: bool = True) -> List[dict]:
        """Buffered (unflushed) events as Chrome trace-event dicts."""
        records = list(self._buffer)
        out = self._header_events() if include_header else []
        out.extend(self._to_event(r) for r in records)
        return out

    def flush(self) -> int:
        """Append buffered events to :attr:`path`; returns events written.

        The metadata header (process name + clock anchors) is written once,
        before the first event line, so even a file truncated by SIGKILL
        mid-run carries everything the merge needs.
        """
        if self.path is None:
            return 0
        with self._lock:
            records, self._buffer = self._buffer, []
        if not records and self._wrote_header:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            if not self._wrote_header:
                for event in self._header_events():
                    fh.write(json.dumps(event) + "\n")
                self._wrote_header = True
            for record in records:
                fh.write(json.dumps(self._to_event(record)) + "\n")
            fh.flush()
        return len(records)


# --------------------------------------------------------------- global state
_TRACER: Optional[Tracer] = None


def configure(
    trace_dir: Optional[Union[str, Path]] = None,
    rank: int = 0,
    lane: Optional[str] = None,
    filename: Optional[str] = None,
    registry=None,
) -> Tracer:
    """Install (and return) the process-global tracer.

    ``trace_dir`` selects file-backed tracing: events land in
    ``<trace_dir>/trace-<lane>.jsonl`` (override with ``filename``).
    ``None`` keeps the tracer memory-only — used by the benches to profile
    phases without touching disk.
    """
    global _TRACER
    lane = lane if lane is not None else f"rank{int(rank)}"
    path = None
    if trace_dir is not None:
        path = Path(trace_dir) / (filename or f"trace-{lane}.jsonl")
    _TRACER = Tracer(rank=rank, lane=lane, path=path, registry=registry)
    return _TRACER


def disable(flush: bool = True) -> None:
    """Uninstall the global tracer (flushing file-backed buffers first)."""
    global _TRACER
    if _TRACER is not None and flush:
        _TRACER.flush()
    _TRACER = None


def is_enabled() -> bool:
    return _TRACER is not None


def get_tracer() -> Optional[Tracer]:
    return _TRACER


def span(name: str, **args):
    """Record a span on the global tracer; no-op while tracing is off.

    This is the instrumentation entry point used throughout the hot paths:
    ``with span("forward"): ...``.  Disabled cost: one global load, one
    ``None`` check, one shared no-op context manager.
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **args)


def instant(name: str, **args) -> None:
    """Record an instant event on the global tracer; no-op while off."""
    tracer = _TRACER
    if tracer is not None:
        tracer.instant(name, **args)


def flush() -> int:
    """Flush the global tracer's file buffer (0 when tracing is off)."""
    tracer = _TRACER
    return tracer.flush() if tracer is not None else 0


def env_trace_dir() -> Optional[str]:
    """The ``REPRO_TRACE_DIR`` override (None when unset/empty)."""
    value = os.environ.get(ENV_TRACE_DIR, "").strip()
    return value or None


def resolve_trace_dir(config=None) -> Optional[str]:
    """Effective trace directory: the env override wins, then the
    experiment config's ``obs.trace_dir`` (empty = disabled)."""
    env = env_trace_dir()
    if env:
        return env
    if config is not None:
        obs_cfg = getattr(config, "obs", None)
        if obs_cfg is not None and obs_cfg.trace_dir:
            return obs_cfg.trace_dir
    return None
