"""Shared metrics registry: counters, gauges, and reservoir histograms.

One :class:`MetricsRegistry` per process holds every named metric the
training loop, runtime workers, and serving cluster emit, so a single
``snapshot()`` exports the whole process and snapshots from many
processes fold together with :meth:`MetricsRegistry.merge_snapshot`
(that is how worker ranks ship their phase accounting back through the
launcher join path).

Naming convention: ``<subsystem>/<metric>`` with ``/`` as the separator —
``phase/allreduce`` (span-fed phase seconds), ``runtime/sync_s``,
``recovery/restarts``, ``serve/submitted``.  Keep names stable: the bench
reports and the ``repro.cli trace`` summary key off them.

Histograms are **bounded**: an exact running count/sum/max plus a
uniform reservoir (Vitter's Algorithm R) of at most ``cap`` samples, so
sustained traffic cannot grow memory without limit while percentiles stay
accurate to reservoir resolution.  ``count``/``mean``/``maximum`` remain
exact at any volume; only percentiles estimate once ``count > cap``.
Sampling uses a seeded ``numpy`` generator, keeping runs reproducible.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

DEFAULT_RESERVOIR_CAP = 8192


class Counter:
    """Monotonic float counter (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def add(self, value: float = 1.0) -> None:
        with self._lock:
            self._value += float(value)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Last-write-wins value (thread-safe enough: float store is atomic)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Bounded histogram: exact count/sum/max + a uniform sample reservoir.

    ``record`` is O(1); once more than ``cap`` samples have been seen,
    Algorithm R replaces a random reservoir slot with probability
    ``cap / count`` so the reservoir stays a uniform sample of the full
    stream.  Percentile queries sort lazily and cache until the next write.
    """

    def __init__(self, name: str = "", cap: int = DEFAULT_RESERVOIR_CAP, seed: int = 0) -> None:
        if cap < 1:
            raise ValueError("histogram reservoir cap must be >= 1")
        self.name = name
        self.cap = int(cap)
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._sorted: Optional[np.ndarray] = None

    # ----------------------------------------------------------------- write
    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value > self._max or self._count == 1:
                self._max = value
            if len(self._samples) < self.cap:
                self._samples.append(value)
            else:
                # Algorithm R: keep with probability cap/count, uniform slot
                slot = int(self._rng.integers(0, self._count))
                if slot < self.cap:
                    self._samples[slot] = value
            self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.record(v)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (in place).

        Exact statistics add exactly.  Reservoirs concatenate when they fit
        under ``cap``; otherwise each side contributes a without-replacement
        subsample proportional to its true (pre-sampling) count, so the
        merged reservoir approximates a uniform sample of the combined
        stream.
        """
        return self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, snap: dict) -> "Histogram":
        other_count = int(snap.get("count", 0))
        if other_count == 0:
            return self
        other_samples = [float(s) for s in snap.get("samples", [])]
        with self._lock:
            new_count = self._count + other_count
            self._sum += float(snap.get("sum", 0.0))
            other_max = float(snap.get("max", 0.0))
            if self._count == 0 or other_max > self._max:
                self._max = other_max if self._count == 0 else max(self._max, other_max)
            combined = self._samples + other_samples
            if len(combined) > self.cap:
                # proportional allocation by true counts, clamped to what
                # each side actually holds; leftover quota spills across
                take_self = min(
                    len(self._samples), int(round(self.cap * self._count / new_count))
                )
                take_other = min(len(other_samples), self.cap - take_self)
                take_self = min(len(self._samples), self.cap - take_other)
                keep: List[float] = []
                if take_self:
                    idx = self._rng.choice(len(self._samples), size=take_self, replace=False)
                    keep.extend(self._samples[i] for i in idx)
                if take_other:
                    idx = self._rng.choice(len(other_samples), size=take_other, replace=False)
                    keep.extend(other_samples[i] for i in idx)
                combined = keep
            self._samples = combined
            self._count = new_count
            self._sorted = None
        return self

    # ------------------------------------------------------------------ read
    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    def percentile(self, q: float) -> float:
        """q-th percentile in native units (0 when empty)."""
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = np.sort(np.asarray(self._samples))
        return float(np.percentile(self._sorted, q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "max": self.maximum,
        }

    def snapshot(self) -> dict:
        """Mergeable export: exact stats + the (bounded) reservoir."""
        return {
            "type": "histogram",
            "count": self._count,
            "sum": self._sum,
            "max": self._max,
            "cap": self.cap,
            "samples": list(self._samples),
        }

    @classmethod
    def from_snapshot(cls, snap: dict, name: str = "", cap: Optional[int] = None) -> "Histogram":
        hist = cls(name=name, cap=cap if cap is not None else int(snap.get("cap", DEFAULT_RESERVOIR_CAP)))
        hist.merge_snapshot(snap)
        return hist

    def __repr__(self) -> str:  # pragma: no cover
        return f"Histogram({self.name!r}, n={self.count}, p50={self.p50:.4g})"


class MetricsRegistry:
    """Get-or-create store of named metrics with a mergeable snapshot."""

    def __init__(self, histogram_cap: int = DEFAULT_RESERVOIR_CAP) -> None:
        self.histogram_cap = int(histogram_cap)
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: type, factory: Callable[[], object]):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, factory())
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, cap: Optional[int] = None) -> Histogram:
        return self._get(
            name,
            Histogram,
            lambda: Histogram(name, cap=cap if cap is not None else self.histogram_cap),
        )

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (default when absent)."""
        metric = self._metrics.get(name)
        return metric.value if isinstance(metric, (Counter, Gauge)) else default

    def snapshot(self) -> Dict[str, dict]:
        """JSON-serializable export of every metric (histograms bounded)."""
        with self._lock:
            items = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in items}

    def merge_snapshot(self, snap: Dict[str, dict]) -> "MetricsRegistry":
        """Fold another process's snapshot into this registry in place.

        Counters add, gauges take the incoming value, histograms merge via
        their reservoir-preserving path.
        """
        for name, entry in snap.items():
            kind = entry.get("type")
            if kind == "counter":
                self.counter(name).add(float(entry.get("value", 0.0)))
            elif kind == "gauge":
                self.gauge(name).set(float(entry.get("value", 0.0)))
            elif kind == "histogram":
                self.histogram(name, cap=entry.get("cap")).merge_snapshot(entry)
        return self

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


# --------------------------------------------------------------- global state
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry shared by train/runtime/serve."""
    return _REGISTRY


def reset_registry() -> None:
    """Clear the global registry (tests and fresh bench runs)."""
    _REGISTRY.reset()


def phase_totals(registry: Optional[MetricsRegistry] = None) -> Dict[str, float]:
    """Span-fed per-phase seconds: ``{phase_name: total_s}``.

    Sourced from the ``phase/<name>`` counters the tracer maintains — this
    is what ``runtime-bench`` / ``perf-bench`` report instead of inline
    timers.
    """
    registry = registry if registry is not None else _REGISTRY
    out: Dict[str, float] = {}
    for name in registry.names():
        if name.startswith("phase/"):
            metric = registry.get(name)
            if isinstance(metric, Counter):
                out[name[len("phase/"):]] = metric.value
    return out
