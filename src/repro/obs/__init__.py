"""Unified observability: span tracing + shared metrics registry.

This package is the telemetry layer for the whole stack:

* :mod:`repro.obs.trace` — nestable, thread-safe spans dumped as Chrome
  trace-event JSONL, one file per process, off by default.
* :mod:`repro.obs.metrics` — named counters/gauges/bounded histograms
  with mergeable snapshots; one global registry shared by training,
  runtime workers, and serving.
* :mod:`repro.obs.merge` — cross-rank trace merge (monotonic-clock offset
  alignment) and the summary behind ``repro.cli trace``.

See the "Observability guide" section of :mod:`repro`'s docstring for
usage.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    phase_totals,
    reset_registry,
)
from .trace import (
    Tracer,
    configure,
    disable,
    env_trace_dir,
    flush,
    get_tracer,
    instant,
    is_enabled,
    resolve_trace_dir,
    span,
)
from .merge import (
    format_summary,
    merge_events,
    merge_trace_dir,
    read_trace_file,
    summarize_trace,
    summarize_trace_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "configure",
    "disable",
    "env_trace_dir",
    "flush",
    "format_summary",
    "get_registry",
    "get_tracer",
    "instant",
    "is_enabled",
    "merge_events",
    "merge_trace_dir",
    "phase_totals",
    "read_trace_file",
    "reset_registry",
    "resolve_trace_dir",
    "span",
    "summarize_trace",
    "summarize_trace_file",
]
