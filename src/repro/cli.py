"""Command-line interface: ``python -m repro.cli <command>``.

Every subcommand parses its flags into a declarative
:class:`repro.api.ExperimentConfig` and drives a :class:`repro.api.Session`
(the facade over trainer / evaluation / inference / serving).  Two flags are
therefore universal:

``--config X``
    Either the paper's compact ``'ixjxk[@machines]'`` parallel notation
    (e.g. ``--config 1x2x4``) or an ExperimentConfig JSON document — a file
    path, or ``-`` to read from stdin.  A JSON config fully describes the
    experiment; the compact notation only sets the parallel section, with
    the remaining sections built from the other flags.
``--dump-config``
    Print the resolved ExperimentConfig as JSON and exit without running.
    ``train --dump-config | train --config -`` round-trips byte-identically.

Commands
--------
train       train a TGN under an i×j×k configuration and print the result
            (``--checkpoint-dir`` writes periodic resumable snapshots;
            ``--backend process`` runs the fault-tolerant process fleet;
            ``--backend fabric`` runs the multi-host agent fabric)
agent       run a fabric host agent: join a controller's rendezvous socket
            and spawn this machine's slice of the rank grid (the daemon a
            ``fit(backend='fabric', managed_agents=False)`` waits for)
resume      continue an interrupted ``train --checkpoint-dir`` run from its
            snapshot directory — bitwise identical to never interrupting it
plan        run the §3.2.4 planner for a cluster + dataset
stats       print Table-2-style statistics of a generated dataset
throughput  model Fig-12-style throughput for a system / configuration
serve-bench train briefly, then load-test the replicated serving cluster
            (micro-batching + streaming ingestion) and report QPS, p50/p99
            latency, dedup ratio and shed counts per replica count
perf-bench  measure hot-path throughput (train step / eval sweep / serve
            batch) with the fused execution layer vs. the legacy path and
            write BENCH_hotpath.json
runtime-bench  process-backend step throughput at 1/2/4 workers and write
            BENCH_runtime.json (``--trace-dir`` keeps the per-rank span
            traces; phase columns come from the telemetry; ``--topology``
            selects the allreduce wiring — star, ring or tree)
trace       merge + summarize a span-trace directory: per-lane phase
            breakdown, sync fraction, recovery timeline
chaos       seeded randomized fault-injection matrix: draw N random fault
            schedules (site x kind x rank x iteration, multi-fault and
            finalization-window included), run each through the
            differential recovery oracle, and fail loudly — with the
            reproducing seed — on any non-bitwise recovery

Dataset and routing-policy choices come from the ``repro.api`` registries,
so components added with ``@register_dataset`` / ``@register_router`` show
up in ``--help`` automatically.
"""

from __future__ import annotations

import argparse
import dataclasses
import re
import sys
from pathlib import Path
from typing import List, Optional

from .api.config import (
    DataConfig,
    ExperimentConfig,
    ModelConfig,
    ObsConfig,
    ServeConfig,
    TrainConfig,
)
from .api.registry import DATASETS, ROUTERS
from .api.session import Session
from .data import PAPER_TABLE2
from .parallel import HardwareSpec, ParallelConfig, plan_for_graph
from .sim import CostModel, WorkloadSpec, g4dn_metal
from .utils import Timer, format_table


def _parse_config(text: str) -> ParallelConfig:
    """Parse the paper's 'ixjxk[@machines]' notation, e.g. '1x2x4' or
    '2x2x8@4'.  Thin argparse shim over :meth:`ParallelConfig.parse`."""
    try:
        return ParallelConfig.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


_NOTATION_RE = re.compile(r"^\d+x\d+x\d+(@\d+)?$", re.IGNORECASE)


def _config_arg(text: str):
    """The universal ``--config`` value: 'ixjxk[@machines]' notation, a path
    to an ExperimentConfig JSON file, or '-' for JSON on stdin."""
    if _NOTATION_RE.match(text.strip()):
        # anything shaped like the notation is the notation: a semantic error
        # (e.g. k not a multiple of machines) must surface, not fall through
        # to a bogus "no such file" complaint
        return _parse_config(text.strip())
    try:
        if text == "-":
            return ExperimentConfig.from_json(sys.stdin.read())
        path = Path(text)
        if not path.exists():
            raise argparse.ArgumentTypeError(
                f"--config {text!r} is neither ixjxk[@machines] notation "
                f"nor an existing JSON file (use '-' for stdin)"
            )
        return ExperimentConfig.from_json(path.read_text())
    except argparse.ArgumentTypeError:
        raise
    except (ValueError, TypeError, OSError) as exc:
        raise argparse.ArgumentTypeError(f"invalid experiment config: {exc}") from exc


def _add_config_flags(sub: argparse.ArgumentParser,
                      default: Optional[ParallelConfig] = None) -> None:
    sub.add_argument(
        "--config", type=_config_arg, default=default or ParallelConfig(),
        help="ixjxk[@machines] parallel notation, an ExperimentConfig JSON "
             "file, or '-' (JSON on stdin)",
    )
    sub.add_argument(
        "--dump-config", action="store_true",
        help="print the resolved ExperimentConfig JSON and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="DistTGL reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    datasets = DATASETS.available()
    policies = ROUTERS.available()

    p_train = sub.add_parser("train", help="train a TGN under an i x j x k config")
    p_train.add_argument("--dataset", choices=datasets, default="wikipedia")
    p_train.add_argument("--scale", type=float, default=0.01)
    p_train.add_argument("--epochs", type=int, default=10)
    p_train.add_argument("--batch-size", type=int, default=100)
    p_train.add_argument("--memory-dim", type=int, default=32)
    p_train.add_argument("--static-dim", type=int, default=0)
    p_train.add_argument("--lr", type=float, default=1e-3)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--backend", choices=["local", "process", "fabric"],
                         default="local",
                         help="execution engine: logical trainers in-process, "
                              "the repro.runtime i*k worker-process backend, or "
                              "the multi-host agent fabric (identical results, "
                              "real parallelism)")
    p_train.add_argument("--rendezvous", default=None, metavar="HOST:PORT",
                         help="fabric controller bind address (default: an "
                              "ephemeral localhost port); agents join it with "
                              "`repro.cli agent --join HOST:PORT`")
    p_train.add_argument("--external-agents", action="store_true",
                         help="fabric: wait for externally launched "
                              "`repro.cli agent` processes instead of "
                              "spawning them (use with --rendezvous)")
    p_train.add_argument("--agents", type=int, default=None, metavar="N",
                         help="fabric: assert the expected agent count "
                              "(must equal the plan's machines)")
    p_train.add_argument("--save", default=None, metavar="DIR",
                         help="persist the session (config + checkpoint) here")
    p_train.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                         help="write periodic mid-run snapshots here "
                              "(resume with `repro.cli resume --dir DIR`)")
    p_train.add_argument("--checkpoint-every", type=int, default=None,
                         metavar="N",
                         help="snapshot cadence in block boundaries "
                              "(default: train.checkpoint_every from the config)")
    p_train.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="record span telemetry (Chrome trace-event "
                              "JSONL per process) here; view with "
                              "`repro.cli trace --dir DIR`")
    p_train.add_argument("--compile", action="store_true",
                         help="trace-and-replay step compiler (repro.nn.tape): "
                              "record each step shape once, replay it as a "
                              "flat tape with pooled buffers (bitwise "
                              "identical results; REPRO_COMPILE=1/0 overrides)")
    p_train.add_argument("--quiet", action="store_true")
    _add_config_flags(p_train)

    p_agent = sub.add_parser(
        "agent",
        help="run a fabric host agent: join a controller rendezvous and "
             "spawn this machine's ranks",
    )
    p_agent.add_argument("--join", required=True, metavar="HOST:PORT",
                         help="the fabric controller's rendezvous address "
                              "(printed by / passed to the fabric fit)")
    p_agent.add_argument("--timeout", type=float, default=600.0,
                         help="control-channel receive timeout in seconds")
    p_agent.add_argument("--quiet", action="store_true")

    p_resume = sub.add_parser(
        "resume",
        help="continue an interrupted train run from its checkpoint directory",
    )
    p_resume.add_argument("--dir", required=True, metavar="DIR",
                          help="checkpoint directory written by "
                               "`train --checkpoint-dir` (config + "
                               "checkpoint.npz + resume.json)")
    p_resume.add_argument("--backend", choices=["local", "process", "fabric"],
                          default="local")
    p_resume.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                          help="keep snapshotting the continued run here "
                               "(default: the --dir being resumed, so a "
                               "second interruption stays resumable; "
                               "'' disables)")
    p_resume.add_argument("--checkpoint-every", type=int, default=None,
                          metavar="N", help="snapshot cadence in block "
                                            "boundaries (default: config)")
    p_resume.add_argument("--save", default=None, metavar="DIR",
                          help="persist the finished session here")
    p_resume.add_argument("--quiet", action="store_true")

    p_plan = sub.add_parser("plan", help="choose (i, j, k) for a cluster")
    p_plan.add_argument("--dataset", choices=datasets, default="wikipedia")
    p_plan.add_argument("--scale", type=float, default=0.01)
    p_plan.add_argument("--machines", type=int, default=1)
    p_plan.add_argument("--gpus", type=int, default=8)
    p_plan.add_argument("--max-missing", type=float, default=0.5)
    _add_config_flags(p_plan)

    p_stats = sub.add_parser("stats", help="Table-2 statistics of a dataset")
    p_stats.add_argument("--dataset", choices=datasets, default="wikipedia")
    p_stats.add_argument("--scale", type=float, default=0.01)
    _add_config_flags(p_stats)

    p_tput = sub.add_parser("throughput", help="modeled throughput (Fig. 12)")
    p_tput.add_argument("--system", choices=["tgn", "tgl", "disttgl"], default="disttgl")
    p_tput.add_argument("--local-batch", type=int, default=600)
    p_tput.add_argument("--edge-dim", type=int, default=172)
    _add_config_flags(p_tput)

    p_serve = sub.add_parser(
        "serve-bench", help="load-test the replicated serving cluster"
    )
    p_serve.add_argument("--dataset", choices=datasets, default="wikipedia")
    p_serve.add_argument("--scale", type=float, default=0.01)
    p_serve.add_argument("--train-epochs", type=int, default=2)
    p_serve.add_argument("--memory-dim", type=int, default=16)
    p_serve.add_argument(
        "--replicas", default="1,2",
        help="comma-separated replica counts to benchmark (default '1,2')",
    )
    p_serve.add_argument("--policy", choices=policies, default="round_robin")
    p_serve.add_argument("--mode", choices=["closed", "open"], default="closed")
    p_serve.add_argument("--clients", type=int, default=8)
    p_serve.add_argument("--requests", type=int, default=25,
                         help="requests per client (closed) / per 'client' row (open)")
    p_serve.add_argument("--target-qps", type=float, default=500.0)
    p_serve.add_argument("--candidates", type=int, default=20)
    p_serve.add_argument("--max-batch", type=int, default=256,
                         help="micro-batch size trigger in (src, dst) pairs")
    p_serve.add_argument("--max-delay-ms", type=float, default=2.0,
                         help="micro-batch deadline trigger")
    p_serve.add_argument("--admission", type=int, default=None,
                         help="cluster-wide queued-request limit (shed beyond)")
    p_serve.add_argument("--stream-chunk", type=int, default=100,
                         help="events ingested per streaming batch while serving")
    p_serve.add_argument("--snapshot", default=None,
                         help="path to save a serving snapshot after the run")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--quiet", action="store_true")
    p_serve.add_argument(
        "--closed-loop", action="store_true",
        help="run the elastic closed-loop bench instead of the load sweep: "
             "autoscaling + continual refit/hot-swap + hedging + a replica "
             "SIGKILL, every response checked bitwise (emits "
             "BENCH_serving_elastic.json)",
    )
    p_serve.add_argument("--ticks", type=int, default=6,
                         help="closed-loop: load bursts to run")
    p_serve.add_argument("--burst", type=int, default=12,
                         help="closed-loop: requests per burst")
    p_serve.add_argument("--report", default="BENCH_serving_elastic.json",
                         help="closed-loop: where the JSON report lands")
    p_serve.add_argument("--no-process-stage", action="store_true",
                         help="closed-loop: skip the process-cluster/SIGKILL "
                              "stage (threaded + hedging only)")
    _add_config_flags(p_serve)

    p_rt = sub.add_parser(
        "runtime-bench",
        help="process-backend step throughput at 1/2/4 workers "
             "(emits BENCH_runtime.json)",
    )
    p_rt.add_argument("--workers", default="1,2,4",
                      help="comma-separated worker counts (default '1,2,4')")
    p_rt.add_argument("--steps", type=int, default=30,
                      help="training iterations per measured point")
    p_rt.add_argument("--batch-size", type=int, default=100,
                      help="local batch per worker (weak scaling)")
    p_rt.add_argument("--topology", choices=["star", "ring", "tree"],
                      default="star",
                      help="gradient-allreduce wiring for the swept worker "
                           "counts; the report also records a ring-vs-star "
                           "comparison at the largest count")
    p_rt.add_argument("--seed", type=int, default=0)
    p_rt.add_argument("--out", default=None,
                      help="report path (default: BENCH_runtime.json at repo root)")
    p_rt.add_argument("--trace-dir", default=None, metavar="DIR",
                      help="keep each point's span traces under DIR/w<n>/ "
                           "(default: a discarded temporary directory)")
    _add_config_flags(p_rt)

    p_perf = sub.add_parser(
        "perf-bench", help="hot-path throughput: fused execution layer vs legacy"
    )
    p_perf.add_argument("--events", type=int, default=2400,
                        help="synthetic events in the benchmark graph")
    p_perf.add_argument("--edge-dim", type=int, default=8)
    p_perf.add_argument("--train-steps", type=int, default=50)
    p_perf.add_argument("--eval-sweeps", type=int, default=2)
    p_perf.add_argument("--serve-requests", type=int, default=40)
    p_perf.add_argument("--out", default=None,
                        help="report path (default: BENCH_hotpath.json at repo root)")
    p_perf.add_argument("--seed", type=int, default=0)
    _add_config_flags(p_perf)

    p_trace = sub.add_parser(
        "trace",
        help="merge + summarize a span-trace directory "
             "(written by train/runtime-bench with telemetry enabled)",
    )
    p_trace.add_argument("--dir", required=True, metavar="DIR",
                         help="trace directory holding trace-*.jsonl lane "
                              "files (or a pre-merged trace.merged.jsonl)")
    p_trace.add_argument("--json", action="store_true",
                         help="print the structural summary as JSON instead "
                              "of the human-readable rendering")

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded randomized fault matrix: N random schedules through "
             "the differential recovery oracle (CI's chaos-matrix job)",
    )
    p_chaos.add_argument("--dataset", choices=datasets, default="wikipedia")
    p_chaos.add_argument("--scale", type=float, default=0.01)
    p_chaos.add_argument("--seeds", type=int, default=5, metavar="N",
                         help="how many random schedules to draw and run")
    p_chaos.add_argument("--seed-base", type=int, default=0,
                         help="first schedule seed (seeds are base..base+N-1)")
    p_chaos.add_argument("--backends", default="process",
                         help="comma-separated faulted backends to sweep "
                              "(process, fabric)")
    p_chaos.add_argument("--iterations", type=int, default=8,
                         help="training iterations per run (faults are drawn "
                              "inside this range, plus the finalization "
                              "window after it)")
    p_chaos.add_argument("--max-faults", type=int, default=2,
                         help="max concurrent/sequential faults per schedule")
    p_chaos.add_argument("--timeout", type=float, default=180.0,
                         help="per-run fit timeout in seconds")
    p_chaos.add_argument("--artifacts", default=None, metavar="DIR",
                         help="write failing schedules (schedule.json + "
                              "differences) and per-run traces here — the "
                              "directory CI uploads on failure")
    p_chaos.add_argument("--quiet", action="store_true")
    _add_config_flags(p_chaos, default=ParallelConfig(i=2, j=1, k=1))

    return parser


# ------------------------------------------------------------ config builders
def _experiment_from_train_args(args) -> ExperimentConfig:
    """The train command's flags -> ExperimentConfig (unless --config already
    supplied a full JSON document, which then wins)."""
    if isinstance(args.config, ExperimentConfig):
        return args.config
    md = args.memory_dim
    return ExperimentConfig(
        data=DataConfig(dataset=args.dataset, scale=args.scale, seed=args.seed),
        model=ModelConfig(
            memory_dim=md, embed_dim=md, time_dim=max(8, md // 2),
            static_dim=args.static_dim,
        ),
        parallel=args.config,
        train=TrainConfig(
            epochs=args.epochs, batch_size=args.batch_size, base_lr=args.lr,
            seed=args.seed, compile=getattr(args, "compile", False),
        ),
    )


def _experiment_from_serve_args(args, first_replicas: int) -> ExperimentConfig:
    if isinstance(args.config, ExperimentConfig):
        return args.config
    md = args.memory_dim
    return ExperimentConfig(
        data=DataConfig(dataset=args.dataset, scale=args.scale, seed=args.seed),
        model=ModelConfig(memory_dim=md, embed_dim=md, time_dim=max(8, md // 2)),
        parallel=args.config,
        train=TrainConfig(epochs=args.train_epochs, batch_size=100, seed=args.seed),
        serve=ServeConfig(
            replicas=first_replicas,
            policy=args.policy,
            admission_limit=args.admission,
            max_batch_pairs=args.max_batch,
            max_delay_ms=args.max_delay_ms,
            stream_chunk=args.stream_chunk,
        ),
    )


def _experiment_from_misc_args(args) -> ExperimentConfig:
    """plan/stats/throughput/perf-bench: only some sections are meaningful,
    but --dump-config still emits a complete, loadable document."""
    if isinstance(args.config, ExperimentConfig):
        return args.config
    kwargs = {"parallel": args.config}
    if hasattr(args, "dataset"):
        kwargs["data"] = DataConfig(
            dataset=args.dataset, scale=args.scale,
            seed=getattr(args, "seed", 0),
        )
    return ExperimentConfig(**kwargs)


def _maybe_dump(args, cfg: ExperimentConfig) -> bool:
    if getattr(args, "dump_config", False):
        print(cfg.to_json())
        return True
    return False


# ------------------------------------------------------------------ commands
def cmd_train(args) -> int:
    cfg = _experiment_from_train_args(args)
    if args.trace_dir:
        # the flag wins even over a full --config JSON: asking for a trace
        # on the command line is an explicit request
        cfg = dataclasses.replace(
            cfg,
            obs=ObsConfig(
                trace_dir=str(args.trace_dir),
                histogram_reservoir=cfg.obs.histogram_reservoir,
            ),
        )
    if _maybe_dump(args, cfg):
        return 0
    sess = Session(cfg)
    fit_kwargs = {}
    if args.backend == "fabric":
        fit_kwargs = dict(
            rendezvous=args.rendezvous,
            managed_agents=not args.external_agents,
            agents=args.agents,
        )
    with Timer() as t:
        result = sess.fit(
            verbose=not args.quiet,
            backend=args.backend,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            **fit_kwargs,
        )
    metric = "MRR" if sess.task == "link" else "F1-micro"
    if args.backend == "process":
        backend_note = f" | {cfg.parallel.i * cfg.parallel.k} worker processes"
    elif args.backend == "fabric":
        world = cfg.parallel.i * cfg.parallel.j * cfg.parallel.k
        backend_note = (
            f" | {world} ranks on {cfg.parallel.machines} machine agent(s)"
        )
    else:
        backend_note = ""
    print(
        f"[{cfg.parallel.label()}] {cfg.data.dataset}: best val {metric} "
        f"{result.best_val:.4f} | test {metric} {result.test_metric:.4f} | "
        f"{result.iterations_run} iterations | {t.elapsed:.1f}s{backend_note}"
    )
    if args.save:
        path = sess.save(args.save)
        print(f"session saved to {path}")
    if args.trace_dir:
        print(
            f"trace written to {args.trace_dir} "
            f"(summarize with `repro.cli trace --dir {args.trace_dir}`)"
        )
    return 0


def cmd_agent(args) -> int:
    from .runtime.fabric import agent_main

    return agent_main(args.join, timeout=args.timeout, quiet=args.quiet)


def cmd_resume(args) -> int:
    sess = Session.resume(args.dir)
    start = sess.trainer._iteration
    # the continued run keeps checkpointing (into the same directory unless
    # redirected) — a resumed run interrupted again must stay resumable;
    # every backend supports periodic snapshots now
    ckpt_dir = args.dir if args.checkpoint_dir is None else args.checkpoint_dir
    with Timer() as t:
        result = sess.fit(
            verbose=not args.quiet,
            backend=args.backend,
            checkpoint_dir=ckpt_dir or None,
            checkpoint_every=args.checkpoint_every,
        )
    metric = "MRR" if sess.task == "link" else "F1-micro"
    print(
        f"[{sess.config.parallel.label()}] resumed {sess.config.data.dataset} "
        f"at iteration {start}: best val {metric} {result.best_val:.4f} | "
        f"test {metric} {result.test_metric:.4f} | "
        f"{result.iterations_run} iterations | {t.elapsed:.1f}s"
    )
    if args.save:
        path = sess.save(args.save)
        print(f"session saved to {path}")
    return 0


def cmd_plan(args) -> int:
    cfg = _experiment_from_misc_args(args)
    if _maybe_dump(args, cfg):
        return 0
    ds = cfg.build_dataset()
    hw = HardwareSpec(machines=args.machines, gpus_per_machine=args.gpus)
    trace = plan_for_graph(hw, ds.graph, max_missing_fraction=args.max_missing)
    for note in trace.notes:
        print(f"* {note}")
    print(f"=> {trace.config.label()} (local batch {trace.local_batch})")
    return 0


def cmd_stats(args) -> int:
    cfg = _experiment_from_misc_args(args)
    if _maybe_dump(args, cfg):
        return 0
    ds = cfg.build_dataset()
    stats = ds.graph.stats()
    paper = PAPER_TABLE2.get(cfg.data.dataset)
    if paper is None:
        # synthetic-only workloads (e.g. 'hotpath') have no Table-2 row
        rows = [(k, v) for k, v in sorted(stats.items())]
        print(format_table(["stat", "generated"], rows))
        return 0
    rows = [
        ("|V|", stats["num_nodes"], f"{paper.num_nodes:,}"),
        ("|E|", stats["num_events"], f"{paper.num_events:,}"),
        ("max(t)", f"{stats['max_time']:.3g}", f"{paper.max_time:.3g}"),
        ("d_e", stats["edge_dim"], paper.edge_dim),
        ("bipartite", stats["bipartite"], paper.bipartite),
        ("unique-edge frac", f"{stats['unique_edge_fraction']:.3f}", "-"),
        ("mean degree", f"{stats['mean_degree']:.1f}", "-"),
    ]
    print(format_table(["stat", "generated", "paper"], rows))
    return 0


def cmd_throughput(args) -> int:
    cfg = _experiment_from_misc_args(args)
    if _maybe_dump(args, cfg):
        return 0
    pc = cfg.parallel
    w = WorkloadSpec(local_batch=args.local_batch, edge_dim=args.edge_dim)
    cm = CostModel(w, g4dn_metal(pc.machines))
    total = cm.throughput(args.system, pc)
    print(
        f"{args.system} {pc.label()}@{pc.machines}: "
        f"{total / 1e3:.1f} kE/s total, "
        f"{total / pc.total_gpus / 1e3:.1f} kE/s per GPU"
    )
    return 0


def cmd_serve_bench(args) -> int:
    from .serve import LoadReport, LoadSpec, run_load

    if args.closed_loop:
        from .serve.bench import run_elastic_bench

        cfg = args.config if isinstance(args.config, ExperimentConfig) else None
        if cfg is not None and _maybe_dump(args, cfg):
            return 0
        report = run_elastic_bench(
            cfg,
            ticks=args.ticks,
            burst=args.burst,
            process_stage=not args.no_process_stage,
            out=args.report,
            verbose=not args.quiet,
        )
        t = report["threaded"]
        print(
            f"threaded: {t['requests']} requests, {t['violations']} violations, "
            f"{t['scale_ups']} up / {t['scale_downs']} down, "
            f"{t['hot_swaps']} hot-swaps "
            f"(p99 {t['latency_ms']['p99']:.2f} ms)"
        )
        h = report["hedging"]
        print(
            f"hedging: p99 {h['off']['p99']:.2f} -> {h['on']['p99']:.2f} ms "
            f"({h['on']['hedge_rate']:.0%} hedged)"
        )
        if "process" in report:
            p = report["process"]
            print(
                f"process: {p['requests']} requests, {p['violations']} "
                f"violations, {p['recoveries']} recoveries, "
                f"{p['hot_swaps']} hot-swaps"
            )
        gates = " ".join(f"{k}={'ok' if v else 'FAIL'}" for k, v in report["ok"].items())
        print(f"gates: {gates}")
        print(f"report written to {args.report}")
        return 0 if report["passed"] else 1

    try:
        replica_counts = [int(part) for part in str(args.replicas).split(",") if part]
    except ValueError:
        print(f"invalid --replicas {args.replicas!r}; expected e.g. '1,2'")
        return 2
    if not replica_counts or min(replica_counts) < 1:
        print("--replicas needs at least one positive count")
        return 2

    cfg = _experiment_from_serve_args(args, first_replicas=replica_counts[0])
    if _maybe_dump(args, cfg):
        return 0

    sess = Session(cfg)
    sess.fit(verbose=not args.quiet)

    load = LoadSpec(
        num_clients=args.clients,
        requests_per_client=args.requests,
        mode=args.mode,
        target_qps=args.target_qps,
        candidates_per_request=args.candidates,
        seed=cfg.data.seed,
    )
    rows = []
    last_cluster = None
    for k in replica_counts:
        # each run serves a fresh copy of the training slice, which streamed
        # val events are appended to (keeps the dataset's graph pristine)
        cluster = sess.serve(replicas=k)
        stream = sess.held_out_stream()
        report = run_load(cluster, load, stream=stream)
        rows.append(report.row(f"k={k} {cfg.serve.policy} {args.mode}"))
        last_cluster = cluster
        if not args.quiet:
            print(
                f"k={k}: {report.completed} served, {report.shed} shed, "
                f"{report.qps:.0f} qps, p50 {report.p50 * 1e3:.2f} ms, "
                f"p99 {report.p99 * 1e3:.2f} ms, dedup {report.dedup_ratio:.1%}, "
                f"memo {report.memo_ratio:.1%}"
            )
    print(format_table(LoadReport.ROW_HEADERS, rows))
    if args.snapshot and last_cluster is not None:
        path = last_cluster.save(args.snapshot)
        print(f"snapshot saved to {path}")
    return 0


def cmd_runtime_bench(args) -> int:
    from .runtime.bench import (
        bench_config,
        run_runtime_bench,
        write_report as write_rt_report,
    )

    try:
        counts = [int(part) for part in str(args.workers).split(",") if part]
    except ValueError:
        print(f"invalid --workers {args.workers!r}; expected e.g. '1,2,4'")
        return 2
    if not counts or min(counts) < 1:
        print("--workers needs at least one positive count")
        return 2
    # a full --config JSON supplies the measured workload (data/model/train
    # sections; the parallel section is swept as w x 1 x 1); the default is
    # the hot-path shape, so --dump-config describes exactly what runs
    if isinstance(args.config, ExperimentConfig):
        base = args.config
    else:
        base = bench_config(
            workers=min(counts), batch_size=args.batch_size, seed=args.seed
        )
    if _maybe_dump(args, base):
        return 0
    report = run_runtime_bench(
        counts, steps=args.steps, base=base, trace_dir=args.trace_dir,
        topology=args.topology,
    )
    rows = [
        (
            f"{p['workers']}",
            f"{p['hosts']}",
            f"{p['topology']}",
            f"{p['events_per_sec']:,.0f}",
            f"{p['cpu_events_per_sec']:,.0f}",
            f"{p['step_ms']:.1f}",
            f"{p['sync_frac']:.1%}",
        )
        for p in report["workers"].values()
    ]
    print(
        f"host cpus: {report['config']['host_cpus']} "
        f"(wall speedup needs >= workers cores; ev/s-per-CPU-s is the "
        f"core-independent measure)"
    )
    print(format_table(
        ["workers", "hosts", "topology", "wall ev/s", "ev per CPU-s",
         "step ms", "sync"],
        rows,
    ))
    for key in ("speedup_vs_1", "cpu_speedup_vs_1"):
        if key in report:
            pretty = ", ".join(f"{w}w: {s:.2f}x" for w, s in report[key].items())
            print(f"{key}: {pretty}")
    if "ring_vs_star" in report:
        rvs = report["ring_vs_star"]
        print(
            f"ring vs star @ {rvs['workers']} workers: sync "
            f"{rvs['star']['sync_s']:.3f}s (star) -> "
            f"{rvs['ring']['sync_s']:.3f}s (ring)"
            + (
                f", {rvs['ring_sync_speedup']:.2f}x"
                if rvs.get("ring_sync_speedup")
                else ""
            )
        )
    path = write_rt_report(report, args.out)
    print(f"report written to {path}")
    if report.get("trace_dir"):
        print(
            f"traces kept under {report['trace_dir']}/w<n>/ "
            f"(summarize with `repro.cli trace --dir {report['trace_dir']}/w<n>`)"
        )
    return 0


def cmd_trace(args) -> int:
    import json as _json

    from .obs.merge import (
        MERGED_NAME,
        format_summary,
        merge_trace_dir,
        summarize_trace_file,
    )

    trace_dir = Path(args.dir)
    if not trace_dir.is_dir():
        print(f"--dir {args.dir!r} is not a directory")
        return 2
    merged = trace_dir / MERGED_NAME
    if not merged.exists():
        # runs killed before their launcher's merge step (chaos runs, ^C)
        # leave only the per-lane files — merge them on demand
        merged = merge_trace_dir(trace_dir)
        if merged is None:
            print(f"no trace-*.jsonl files under {trace_dir}")
            return 2
    summary = summarize_trace_file(merged)
    if args.json:
        print(_json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"merged trace: {merged}")
        print(format_summary(summary))
    return 0


def cmd_perf_bench(args) -> int:
    from .perf import run_hotpath_bench, write_report

    cfg = _experiment_from_misc_args(args)
    if _maybe_dump(args, cfg):
        return 0
    report = run_hotpath_bench(
        num_events=args.events,
        edge_dim=args.edge_dim,
        train_steps=args.train_steps,
        eval_sweeps=args.eval_sweeps,
        serve_requests=args.serve_requests,
        seed=args.seed,
    )
    rows = []
    for section in ("train_step", "eval_sweep", "serve_batch"):
        s = report[section]
        rows.append(
            (
                section,
                f"{s['fused_events_per_sec']:,.0f}",
                f"{s['legacy_events_per_sec']:,.0f}",
                f"{s['speedup']:.2f}x",
                f"{s['compiled_events_per_sec']:,.0f}"
                if "compiled_events_per_sec" in s else "-",
                f"{s['speedup_compiled_vs_fused']:.2f}x"
                if "speedup_compiled_vs_fused" in s else "-",
            )
        )
    print(format_table(
        ["hot path", "fused ev/s", "legacy ev/s", "speedup",
         "traced ev/s", "traced/fused"],
        rows,
    ))
    path = write_report(report, args.out)
    print(f"report written to {path}")
    return 0


def cmd_chaos(args) -> int:
    import json as _json

    from .testing.chaos import ChaosSchedule, run_chaos_schedule

    backends = [b.strip() for b in str(args.backends).split(",") if b.strip()]
    bad = [b for b in backends if b not in ("process", "fabric")]
    if bad or not backends:
        print(f"--backends must name process and/or fabric, got {args.backends!r}")
        return 2
    plan = (
        args.config.parallel
        if isinstance(args.config, ExperimentConfig)
        else args.config
    )
    world = plan.i * plan.j * plan.k
    md = 16
    base_cfg = (
        args.config
        if isinstance(args.config, ExperimentConfig)
        else ExperimentConfig(
            data=DataConfig(dataset=args.dataset, scale=args.scale, seed=0),
            model=ModelConfig(memory_dim=md, embed_dim=md, time_dim=8),
            parallel=plan,
            train=TrainConfig(epochs=10, batch_size=100, seed=0),
        )
    )
    if _maybe_dump(args, base_cfg):
        return 0
    artifacts = Path(args.artifacts) if args.artifacts else None
    failures = 0
    runs = 0
    for backend in backends:
        for seed in range(args.seed_base, args.seed_base + args.seeds):
            schedule = ChaosSchedule.random(
                seed,
                world=world,
                max_iteration=args.iterations,
                backend=backend,
                max_faults=args.max_faults,
            )
            cfg = base_cfg
            run_dir = None
            if artifacts is not None:
                run_dir = artifacts / f"{backend}-seed{seed}"
                run_dir.mkdir(parents=True, exist_ok=True)
                cfg = dataclasses.replace(
                    base_cfg,
                    obs=ObsConfig(
                        trace_dir=str(run_dir / "trace"),
                        histogram_reservoir=base_cfg.obs.histogram_reservoir,
                    ),
                )
            if not args.quiet:
                print(f"[chaos] {schedule.describe()}")
            runs += 1
            try:
                report = run_chaos_schedule(cfg, schedule, timeout=args.timeout)
                ok = report.recovered and report.bitwise_equal
                differences = report.differences
            except Exception as exc:  # noqa: BLE001 - a hang/crash IS a finding
                ok = False
                differences = [f"{type(exc).__name__}: {exc}"]
            if ok:
                if not args.quiet:
                    print(f"[chaos] seed {seed} ({backend}): bitwise OK")
                continue
            failures += 1
            print(f"[chaos] seed {seed} ({backend}): FAILED")
            for diff in differences:
                print(f"  - {diff}")
            print(
                f"  reproduce: repro.cli chaos --seeds 1 --seed-base {seed} "
                f"--backends {backend} --iterations {args.iterations} "
                f"--max-faults {args.max_faults}"
            )
            if run_dir is not None:
                (run_dir / "schedule.json").write_text(
                    _json.dumps(
                        {
                            "schedule": schedule.to_dict(),
                            "differences": differences,
                        },
                        indent=2,
                        sort_keys=True,
                    )
                    + "\n"
                )
    print(
        f"[chaos] {runs - failures}/{runs} schedules recovered bitwise"
        + (f"; {failures} FAILED" if failures else "")
    )
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "train": cmd_train,
        "agent": cmd_agent,
        "resume": cmd_resume,
        "plan": cmd_plan,
        "stats": cmd_stats,
        "throughput": cmd_throughput,
        "serve-bench": cmd_serve_bench,
        "runtime-bench": cmd_runtime_bench,
        "perf-bench": cmd_perf_bench,
        "trace": cmd_trace,
        "chaos": cmd_chaos,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
