"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
train       train a TGN under an i×j×k configuration and print the result
plan        run the §3.2.4 planner for a cluster + dataset
stats       print Table-2-style statistics of a generated dataset
throughput  model Fig-12-style throughput for a system / configuration
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .data import PAPER_TABLE2, load_dataset
from .parallel import HardwareSpec, ParallelConfig, plan_for_graph
from .sim import CostModel, WorkloadSpec, g4dn_metal
from .train import DistTGLTrainer, TrainerSpec
from .utils import Timer, format_table


def _parse_config(text: str) -> ParallelConfig:
    """Parse the paper's 'ixjxk[@machines]' notation, e.g. '1x2x4' or
    '2x2x8@4'."""
    machines = 1
    if "@" in text:
        text, m = text.split("@", 1)
        machines = int(m)
    try:
        i, j, k = (int(part) for part in text.lower().split("x"))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected ixjxk[@machines], got {text!r}"
        ) from exc
    return ParallelConfig(i, j, k, machines=machines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="DistTGL reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="train a TGN under an i x j x k config")
    p_train.add_argument("--dataset", choices=sorted(PAPER_TABLE2), default="wikipedia")
    p_train.add_argument("--scale", type=float, default=0.01)
    p_train.add_argument("--config", type=_parse_config, default=ParallelConfig())
    p_train.add_argument("--epochs", type=int, default=10)
    p_train.add_argument("--batch-size", type=int, default=100)
    p_train.add_argument("--memory-dim", type=int, default=32)
    p_train.add_argument("--static-dim", type=int, default=0)
    p_train.add_argument("--lr", type=float, default=1e-3)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--quiet", action="store_true")

    p_plan = sub.add_parser("plan", help="choose (i, j, k) for a cluster")
    p_plan.add_argument("--dataset", choices=sorted(PAPER_TABLE2), default="wikipedia")
    p_plan.add_argument("--scale", type=float, default=0.01)
    p_plan.add_argument("--machines", type=int, default=1)
    p_plan.add_argument("--gpus", type=int, default=8)
    p_plan.add_argument("--max-missing", type=float, default=0.5)

    p_stats = sub.add_parser("stats", help="Table-2 statistics of a dataset")
    p_stats.add_argument("--dataset", choices=sorted(PAPER_TABLE2), default="wikipedia")
    p_stats.add_argument("--scale", type=float, default=0.01)

    p_tput = sub.add_parser("throughput", help="modeled throughput (Fig. 12)")
    p_tput.add_argument("--system", choices=["tgn", "tgl", "disttgl"], default="disttgl")
    p_tput.add_argument("--config", type=_parse_config, default=ParallelConfig())
    p_tput.add_argument("--local-batch", type=int, default=600)
    p_tput.add_argument("--edge-dim", type=int, default=172)

    return parser


def cmd_train(args) -> int:
    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    spec = TrainerSpec(
        batch_size=args.batch_size,
        memory_dim=args.memory_dim,
        embed_dim=args.memory_dim,
        time_dim=max(8, args.memory_dim // 2),
        static_dim=args.static_dim,
        base_lr=args.lr,
        seed=args.seed,
    )
    trainer = DistTGLTrainer(ds, args.config, spec)
    with Timer() as t:
        result = trainer.train(
            epochs_equivalent=args.epochs, verbose=not args.quiet
        )
    metric = "MRR" if ds.task == "link" else "F1-micro"
    print(
        f"[{args.config.label()}] {args.dataset}: best val {metric} "
        f"{result.best_val:.4f} | test {metric} {result.test_metric:.4f} | "
        f"{result.iterations_run} iterations | {t.elapsed:.1f}s"
    )
    return 0


def cmd_plan(args) -> int:
    ds = load_dataset(args.dataset, scale=args.scale)
    hw = HardwareSpec(machines=args.machines, gpus_per_machine=args.gpus)
    trace = plan_for_graph(hw, ds.graph, max_missing_fraction=args.max_missing)
    for note in trace.notes:
        print(f"* {note}")
    print(f"=> {trace.config.label()} (local batch {trace.local_batch})")
    return 0


def cmd_stats(args) -> int:
    ds = load_dataset(args.dataset, scale=args.scale)
    stats = ds.graph.stats()
    paper = PAPER_TABLE2[args.dataset]
    rows = [
        ("|V|", stats["num_nodes"], f"{paper.num_nodes:,}"),
        ("|E|", stats["num_events"], f"{paper.num_events:,}"),
        ("max(t)", f"{stats['max_time']:.3g}", f"{paper.max_time:.3g}"),
        ("d_e", stats["edge_dim"], paper.edge_dim),
        ("bipartite", stats["bipartite"], paper.bipartite),
        ("unique-edge frac", f"{stats['unique_edge_fraction']:.3f}", "-"),
        ("mean degree", f"{stats['mean_degree']:.1f}", "-"),
    ]
    print(format_table(["stat", "generated", "paper"], rows))
    return 0


def cmd_throughput(args) -> int:
    w = WorkloadSpec(local_batch=args.local_batch, edge_dim=args.edge_dim)
    cm = CostModel(w, g4dn_metal(args.config.machines))
    total = cm.throughput(args.system, args.config)
    print(
        f"{args.system} {args.config.label()}@{args.config.machines}: "
        f"{total / 1e3:.1f} kE/s total, "
        f"{total / args.config.total_gpus / 1e3:.1f} kE/s per GPU"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "train": cmd_train,
        "plan": cmd_plan,
        "stats": cmd_stats,
        "throughput": cmd_throughput,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
