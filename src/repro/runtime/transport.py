"""Wire transport for the process runtime: length-prefixed numpy frames.

Everything the runtime sends between processes — gradients, weight blobs,
barrier tokens, serving requests — travels as a :class:`Frame`: a small JSON
header (tag + metadata + array manifest) followed by the raw bytes of each
array, concatenated.  The encoding is **pickle-free for arrays**: payloads
are ``ndarray.tobytes()`` and are rebuilt with ``np.frombuffer``, so a frame
is safe to receive from another process (or, in principle, another host)
without ever unpickling attacker-controlled bytes, and large arrays move as
one contiguous buffer copy instead of a pickle graph walk.

Two byte-stream endpoints carry frames:

* :class:`PipeEndpoint` — a ``multiprocessing.connection.Connection``
  (``Pipe(duplex=True)``); ``send_bytes``/``recv_bytes`` move raw buffers,
  no pickling.  This is what the launcher wires between ranks on one host.
* :class:`SocketEndpoint` — a connected ``socket.socket`` with an explicit
  4-byte big-endian length prefix per message, for transports that do not
  frame for us (TCP / UNIX sockets across hosts).

:class:`Channel` is the frame codec over either endpoint.  Receives take a
timeout and raise :class:`TransportTimeout` instead of blocking forever — a
dead peer must surface as an error, not a hang.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..utils.misc import pack_arrays, unpack_arrays

_LEN = struct.Struct(">I")

FRAME_VERSION = 1


class TransportError(RuntimeError):
    """A peer vanished or sent garbage."""


class TransportTimeout(TransportError):
    """No frame arrived within the allotted time."""


@dataclass
class Frame:
    """One runtime message: a tag, JSON-able metadata, named arrays."""

    tag: str
    meta: dict = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    def array(self, name: str) -> np.ndarray:
        try:
            return self.arrays[name]
        except KeyError:
            raise TransportError(
                f"frame {self.tag!r} missing array {name!r}; "
                f"has {sorted(self.arrays)}"
            ) from None


def encode_frame(frame: Frame) -> bytes:
    """Frame -> bytes: length-prefixed JSON header, then raw array payloads."""
    manifest, payloads = pack_arrays(frame.arrays.items())
    header = json.dumps(
        {
            "v": FRAME_VERSION,
            "tag": frame.tag,
            "meta": frame.meta,
            "arrays": manifest,
        }
    ).encode("utf-8")
    return b"".join([_LEN.pack(len(header)), header, *payloads])


def decode_frame(buf: bytes) -> Frame:
    """bytes -> Frame (inverse of :func:`encode_frame`)."""
    if len(buf) < _LEN.size:
        raise TransportError(f"frame too short ({len(buf)} bytes)")
    (head_len,) = _LEN.unpack_from(buf, 0)
    start = _LEN.size
    try:
        header = json.loads(buf[start : start + head_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"undecodable frame header: {exc}") from exc
    if header.get("v") != FRAME_VERSION:
        raise TransportError(f"unsupported frame version {header.get('v')!r}")
    try:
        views, offset = unpack_arrays(
            header["arrays"], buf, offset=start + head_len, context="frame payload"
        )
    except ValueError as exc:
        raise TransportError(str(exc)) from exc
    if offset != len(buf):
        raise TransportError(f"frame has {len(buf) - offset} trailing bytes")
    # copy so the frame owns writable arrays independent of the buffer
    arrays: Dict[str, np.ndarray] = {k: v.copy() for k, v in views.items()}
    return Frame(tag=header["tag"], meta=header["meta"], arrays=arrays)


class PipeEndpoint:
    """Raw-bytes endpoint over a ``multiprocessing`` pipe connection."""

    def __init__(self, conn) -> None:
        self.conn = conn

    def send_bytes(self, buf: bytes) -> None:
        try:
            self.conn.send_bytes(buf)
        except (BrokenPipeError, OSError, EOFError) as exc:
            raise TransportError(f"peer closed the pipe: {exc}") from exc

    def recv_bytes(self, timeout: Optional[float]) -> bytes:
        try:
            if timeout is not None and not self.conn.poll(timeout):
                raise TransportTimeout(
                    f"no frame within {timeout:.1f}s (peer busy or dead)"
                )
            return self.conn.recv_bytes()
        except TransportError:
            raise
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise TransportError(f"peer closed the pipe: {exc}") from exc

    def poll(self, timeout: float = 0.0) -> bool:
        try:
            return self.conn.poll(timeout)
        except (BrokenPipeError, OSError, EOFError):
            return False

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


class SocketEndpoint:
    """Raw-bytes endpoint over a connected socket, 4-byte length prefix."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock

    def send_bytes(self, buf: bytes) -> None:
        try:
            self.sock.sendall(_LEN.pack(len(buf)) + buf)
        except OSError as exc:
            raise TransportError(f"peer closed the socket: {exc}") from exc

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        while n:
            try:
                chunk = self.sock.recv(min(n, 1 << 20))
            except socket.timeout as exc:
                raise TransportTimeout("no frame within socket timeout") from exc
            except OSError as exc:
                raise TransportError(f"peer closed the socket: {exc}") from exc
            if not chunk:
                raise TransportError("peer closed the socket mid-frame")
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def recv_bytes(self, timeout: Optional[float]) -> bytes:
        self.sock.settimeout(timeout)
        (length,) = _LEN.unpack(self._recv_exact(_LEN.size))
        return self._recv_exact(length)

    def poll(self, timeout: float = 0.0) -> bool:
        import select

        ready, _, _ = select.select([self.sock], [], [], timeout)
        return bool(ready)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class Channel:
    """Frame codec over a byte-stream endpoint (pipe or socket).

    The default receive timeout bounds every blocking wait in the runtime:
    when a peer dies mid-collective the survivors raise
    :class:`TransportTimeout` (and exit) instead of deadlocking — the
    launcher turns either signal into one raised error at the caller.
    """

    def __init__(self, endpoint, default_timeout: float = 120.0) -> None:
        if isinstance(endpoint, (PipeEndpoint, SocketEndpoint)):
            self.endpoint = endpoint
        elif isinstance(endpoint, socket.socket):
            self.endpoint = SocketEndpoint(endpoint)
        else:  # a multiprocessing Connection (which quacks like an endpoint
            # but times out via poll(), so it must be wrapped)
            self.endpoint = PipeEndpoint(endpoint)
        self.default_timeout = default_timeout

    def send(
        self,
        tag: str,
        meta: Optional[dict] = None,
        arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        self.endpoint.send_bytes(
            encode_frame(Frame(tag=tag, meta=meta or {}, arrays=arrays or {}))
        )

    def recv(self, timeout: Optional[float] = None) -> Frame:
        if timeout is None:
            timeout = self.default_timeout
        return decode_frame(self.endpoint.recv_bytes(timeout))

    def expect(self, tag: str, timeout: Optional[float] = None) -> Frame:
        """Receive one frame and require its tag (protocol violations raise)."""
        frame = self.recv(timeout)
        if frame.tag != tag:
            if frame.tag == "error":
                raise TransportError(
                    f"peer failed: {frame.meta.get('error', 'unknown error')}"
                )
            raise TransportError(f"expected frame {tag!r}, got {frame.tag!r}")
        return frame

    def poll(self, timeout: float = 0.0) -> bool:
        return self.endpoint.poll(timeout)

    def close(self) -> None:
        self.endpoint.close()


def pipe_channel_pair(default_timeout: float = 120.0):
    """A connected (parent, child) channel pair over one duplex pipe."""
    import multiprocessing as mp

    a, b = mp.Pipe(duplex=True)
    return Channel(a, default_timeout), Channel(b, default_timeout)


# ------------------------------------------------------------ socket dialing
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for socket dialing.

    ``connect_timeout`` caps the *total* time spent dialing (attempts plus
    sleeps); ``handshake_timeout`` is what callers should allot to the
    first application-level exchange after the TCP connect succeeds.
    Delays double from ``base_delay`` up to ``max_delay`` between
    attempts, so a peer that is merely slow to bind its listener (an agent
    racing the controller, a respawn re-opening its port) is retried
    instead of surfacing as an instant :class:`TransportError`.
    """

    connect_timeout: float = 20.0
    handshake_timeout: float = 30.0
    base_delay: float = 0.05
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.connect_timeout <= 0:
            raise ValueError("connect_timeout must be positive")
        if self.handshake_timeout <= 0:
            raise ValueError("handshake_timeout must be positive")
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 < base_delay <= max_delay")

    def delays(self):
        """The backoff sequence: base, 2*base, ... capped at max_delay."""
        delay = self.base_delay
        while True:
            yield delay
            delay = min(delay * 2, self.max_delay)


def connect_with_retry(
    host: str,
    port: int,
    retry: Optional[RetryPolicy] = None,
) -> socket.socket:
    """Dial ``host:port``, retrying refused/unreachable connects.

    Returns a connected ``TCP_NODELAY`` socket or raises
    :class:`TransportTimeout` once the policy's ``connect_timeout`` budget
    is spent.  Refusals are *expected* during fleet bring-up — every rank
    dials every lower-rank listener as soon as it learns the address, and
    the listener may not have reached ``accept`` yet.
    """
    import time

    retry = retry or RetryPolicy()
    deadline = time.monotonic() + retry.connect_timeout
    last_error: Optional[Exception] = None
    for delay in retry.delays():
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        try:
            sock = socket.create_connection(
                (host, port), timeout=min(remaining, retry.max_delay * 4)
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(None)
            return sock
        except OSError as exc:
            last_error = exc
            time.sleep(min(delay, max(deadline - time.monotonic(), 0)))
    raise TransportTimeout(
        f"could not connect to {host}:{port} within "
        f"{retry.connect_timeout:.1f}s (last error: {last_error})"
    )


def socket_channel(
    host: str,
    port: int,
    retry: Optional[RetryPolicy] = None,
    default_timeout: float = 120.0,
) -> Channel:
    """Dial with retry and wrap the socket as a frame :class:`Channel`."""
    return Channel(
        SocketEndpoint(connect_with_retry(host, port, retry)),
        default_timeout=default_timeout,
    )
