"""Collective operations over the frame transport (star / ring / tree).

The runtime's collectives mirror the contract of
:mod:`repro.parallel.allreduce` — gradient *averaging* across replicas and
root-to-all weight broadcast — but move real bytes between OS processes
instead of sharing one weight copy.  The logical and process execution
paths therefore agree on semantics: ``allreduce(vec)`` returns the same
deterministic rank-ordered reduction on every rank, accumulated in float64
exactly like :func:`repro.parallel.allreduce.allreduce_gradients`.

Three topologies implement the one interface:

* :class:`Communicator` — the star: the root owns one channel per peer,
  gathers contributions in rank order, reduces, fans the result back out.
  Protocol-simple, but the root serially moves ``2(world-1)`` full vectors
  per allreduce while every other rank idles — the measured sync wall of
  ``BENCH_runtime.json``.
* :class:`ChainCommunicator` — the pipelined ring reduction: chunks flow
  up the rank chain ``0 → world-1`` accumulating in place, then the totals
  flow back down, with all chunks in flight at once.  Per *link* traffic
  is two payloads per allreduce regardless of world size, so no single
  endpoint is a serialization point.
* :class:`TreeCommunicator` — raw vectors gather up a binary heap tree,
  the root folds them **in rank order**, and the total broadcasts down in
  ``O(log world)`` hops.

All three produce the identical left-associated rank-order float64 fold —
chunking and routing change who moves the bytes, never the arithmetic — so
any topology can back any run and stay bitwise equal to the others and to
the logical backend.

Every blocking wait uses the channel timeout, so a dead peer breaks the
collective with :class:`~repro.runtime.transport.TransportTimeout` rather
than hanging the fleet.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .transport import Channel, Frame, TransportError


class Communicator:
    """Rank-aware collective endpoint for one process group.

    The root holds ``peers`` (channel per non-root rank, index ``r - 1``);
    non-roots hold a single ``root`` channel.  Ranks are dense ``0..world``
    within this communicator — a sub-communicator (say, the ``i`` shards of
    one memory group) renumbers its members.
    """

    def __init__(
        self,
        rank: int,
        world: int,
        root_channel: Optional[Channel] = None,
        peer_channels: Optional[Sequence[Channel]] = None,
    ) -> None:
        if world <= 0:
            raise ValueError("world must be positive")
        if not 0 <= rank < world:
            raise ValueError(f"rank {rank} outside world of {world}")
        self.rank = rank
        self.world = world
        if world == 1:
            self.peers: List[Channel] = []
            self.root: Optional[Channel] = None
        elif rank == 0:
            if peer_channels is None or len(peer_channels) != world - 1:
                raise ValueError(f"root needs {world - 1} peer channels")
            self.peers = list(peer_channels)
            self.root = None
        else:
            if root_channel is None:
                raise ValueError("non-root ranks need a root channel")
            self.peers = []
            self.root = root_channel
        self._seq = 0  # collective sequence number (protocol debugging)

    # ------------------------------------------------------------- barrier
    def barrier(self, tag: str = "barrier", root_section=None) -> None:
        """Block until every rank has arrived.

        ``root_section`` runs on the root between collecting the arrivals
        and releasing the fleet — i.e. while every rank is provably idle.
        The runtime uses it for group-exclusive state transitions (the
        wrap-around memory reset) without a second round trip.
        """
        if self.world == 1:
            if root_section is not None:
                root_section()
            return
        self._seq += 1
        meta = {"seq": self._seq}
        if self.rank == 0:
            for ch in self.peers:
                ch.expect(f"{tag}/arrive")
            if root_section is not None:
                root_section()
            for ch in self.peers:
                ch.send(f"{tag}/go", meta)
        else:
            self.root.send(f"{tag}/arrive", meta)
            self.root.expect(f"{tag}/go")

    # ----------------------------------------------------------- allreduce
    def allreduce_sum(self, vec: np.ndarray) -> np.ndarray:
        """Element-wise sum of ``vec`` across ranks; same result everywhere.

        Accumulation is float64 in rank order (0, 1, …) regardless of
        message arrival order, so the reduction is deterministic — a
        prerequisite for keeping per-rank optimizer replicas bitwise in
        sync without re-broadcasting weights every step.
        """
        vec = np.ascontiguousarray(vec, dtype=np.float64)
        if self.world == 1:
            return vec.copy()
        self._seq += 1
        if self.rank == 0:
            parts: Dict[int, np.ndarray] = {0: vec}
            for idx, ch in enumerate(self.peers):
                frame = ch.expect("allreduce/part")
                part = frame.array("vec")
                if part.shape != vec.shape:
                    raise TransportError(
                        f"allreduce shape mismatch: rank {idx + 1} sent "
                        f"{part.shape}, root has {vec.shape}"
                    )
                parts[idx + 1] = part
            total = parts[0].copy()
            for r in range(1, self.world):
                total += parts[r]
            for ch in self.peers:
                ch.send("allreduce/total", arrays={"vec": total})
            return total
        self.root.send("allreduce/part", arrays={"vec": vec})
        return self.root.expect("allreduce/total").array("vec")

    def allreduce_mean(self, vec: np.ndarray) -> np.ndarray:
        return self.allreduce_sum(vec) / self.world

    def reduce_to_root(self, vec: np.ndarray) -> Optional[np.ndarray]:
        """Rank-order float64 fold delivered to the root only; peers get
        ``None`` (no fan-out leg).

        The fabric's two-level gradient reduction uses this as its first
        hop: the ``j`` epoch rows of one gradient slot fold their one-term
        partials at the slot leader — the identical ``+=`` loop a process
        rank runs over its cached block — before the leader joins the
        cross-machine allreduce and broadcasts the final total back.
        """
        vec = np.ascontiguousarray(vec, dtype=np.float64)
        if self.world == 1:
            return vec.copy()
        self._seq += 1
        if self.rank == 0:
            total = vec.copy()
            for idx, ch in enumerate(self.peers):
                part = ch.expect("reduce/part").array("vec")
                if part.shape != vec.shape:
                    raise TransportError(
                        f"reduce shape mismatch: rank {idx + 1} sent "
                        f"{part.shape}, root has {vec.shape}"
                    )
                total += part
            return total
        self.root.send("reduce/part", arrays={"vec": vec})
        return None

    # ----------------------------------------------------------- broadcast
    def broadcast(
        self,
        arrays: Optional[Dict[str, np.ndarray]] = None,
        meta: Optional[dict] = None,
    ) -> Frame:
        """Root's (arrays, meta) delivered to every rank (root included)."""
        self._seq += 1
        if self.rank == 0:
            frame = Frame("broadcast", meta=meta or {}, arrays=arrays or {})
            for ch in self.peers:
                ch.send(frame.tag, frame.meta, frame.arrays)
            return frame
        return self.root.expect("broadcast")

    def gather_meta(self, meta: dict) -> Optional[List[dict]]:
        """Root receives every rank's metadata dict (rank order); peers None."""
        self._seq += 1
        if self.world == 1:
            return [meta]
        if self.rank == 0:
            out = [meta]
            for ch in self.peers:
                out.append(dict(ch.expect("gather/meta").meta))
            return out
        self.root.send("gather/meta", meta)
        return None

    # ------------------------------------------------ ordered token chain
    def serial_section(self, fn, tag: str = "chain") -> None:
        """Run ``fn()`` on every rank, strictly in rank order.

        The write-ordering primitive behind shared-memory commits: rank 0
        runs first, then hands the token to rank 1, and so on.  Implemented
        through the star (the root relays the token), so it needs no extra
        channels beyond the ones the communicator already holds.
        """
        self._seq += 1
        if self.rank == 0:
            fn()
            for ch in self.peers:        # release ranks 1..n in order
                ch.send(f"{tag}/token")
                ch.expect(f"{tag}/done")
        else:
            self.root.expect(f"{tag}/token")
            fn()
            self.root.send(f"{tag}/done")

    def close(self) -> None:
        for ch in self.peers:
            ch.close()
        if self.root is not None:
            self.root.close()


class ChainCommunicator:
    """Pipelined ring-style reduction along the rank chain.

    Rank ``r`` holds a channel to ``r - 1`` (``prev``) and ``r + 1``
    (``next``).  ``allreduce_sum`` splits the vector into fixed-size
    chunks and runs a two-wave pipeline per chunk:

    * **up** — rank 0 sends its chunk to rank 1; each middle rank receives
      the running partial, folds its own chunk in with ``+=`` (float64),
      and forwards; the last rank's fold completes the total.
    * **down** — the totals flow back ``world-1 → 0``, each rank keeping a
      copy as it forwards.

    Per element the fold is ``(((c₀ + c₁) + c₂) + …)`` — exactly the star
    root's rank-order loop — so the result is bitwise identical to
    :meth:`Communicator.allreduce_sum`.  Chunks only partition elements;
    they never reorder any element's accumulation.  All chunks of a wave
    are in flight simultaneously (sends are buffered, the dependency graph
    is acyclic), so the wall-clock cost per link is ~2 payloads instead of
    the star root's ``2(world-1)``.
    """

    def __init__(
        self,
        rank: int,
        world: int,
        prev_channel: Optional[Channel] = None,
        next_channel: Optional[Channel] = None,
        chunk_elems: int = 8192,
    ) -> None:
        if world <= 0:
            raise ValueError("world must be positive")
        if not 0 <= rank < world:
            raise ValueError(f"rank {rank} outside world of {world}")
        if chunk_elems <= 0:
            raise ValueError("chunk_elems must be positive")
        if world > 1:
            if rank > 0 and prev_channel is None:
                raise ValueError(f"rank {rank} needs a prev channel")
            if rank < world - 1 and next_channel is None:
                raise ValueError(f"rank {rank} needs a next channel")
        self.rank = rank
        self.world = world
        self.prev = prev_channel if rank > 0 else None
        self.next = next_channel if rank < world - 1 else None
        self.chunk_elems = int(chunk_elems)
        self._seq = 0

    def _chunks(self, vec: np.ndarray) -> List[slice]:
        return [
            slice(lo, min(lo + self.chunk_elems, vec.size))
            for lo in range(0, vec.size, self.chunk_elems)
        ] or [slice(0, 0)]

    # ------------------------------------------------------------- barrier
    def barrier(self, tag: str = "barrier", root_section=None) -> None:
        """Three token waves: arrive up, collected down, go up.

        After the "collected" token reaches rank 0, every other rank is
        blocked awaiting "go" — so ``root_section`` runs on rank 0 with the
        fleet provably idle, matching the star's guarantee, before the
        release wave walks back up the chain.
        """
        self._seq += 1
        if self.world == 1:
            if root_section is not None:
                root_section()
            return
        if self.prev is not None:
            self.prev.expect(f"{tag}/arrive")
        if self.next is not None:
            self.next.send(f"{tag}/arrive")
            self.next.expect(f"{tag}/collected")
        if self.prev is not None:
            self.prev.send(f"{tag}/collected")
            self.prev.expect(f"{tag}/go")
        elif root_section is not None:
            root_section()
        if self.next is not None:
            self.next.send(f"{tag}/go")

    # ----------------------------------------------------------- allreduce
    def allreduce_sum(self, vec: np.ndarray) -> np.ndarray:
        vec = np.ascontiguousarray(vec, dtype=np.float64)
        if self.world == 1:
            return vec.copy()
        self._seq += 1
        total = vec.copy()
        flat = total.reshape(-1)
        chunks = self._chunks(flat)
        # up wave: partials accumulate toward the last rank, all chunks
        # pipelined (rank r is folding chunk c+1 while r+1 folds chunk c)
        for c, sl in enumerate(chunks):
            if self.prev is not None:
                part = self.prev.expect("chain/up").array("vec")
                if part.shape != flat[sl].shape:
                    raise TransportError(
                        f"chain allreduce chunk {c} shape mismatch: got "
                        f"{part.shape}, rank {self.rank} has {flat[sl].shape}"
                    )
                # rank-order fold: the incoming partial already holds
                # ranks 0..r-1 left-associated; += appends this rank
                part += flat[sl]
                flat[sl] = part
            if self.next is not None:
                self.next.send("chain/up", {"c": c}, arrays={"vec": flat[sl]})
        # down wave: the completed totals flow back to rank 0
        for c, sl in enumerate(chunks):
            if self.next is not None:
                flat[sl] = self.next.expect("chain/down").array("vec")
            if self.prev is not None:
                self.prev.send("chain/down", {"c": c}, arrays={"vec": flat[sl]})
        return total

    def allreduce_mean(self, vec: np.ndarray) -> np.ndarray:
        return self.allreduce_sum(vec) / self.world

    # ----------------------------------------------------------- broadcast
    def broadcast(
        self,
        arrays: Optional[Dict[str, np.ndarray]] = None,
        meta: Optional[dict] = None,
    ) -> Frame:
        """Rank 0's (arrays, meta) relayed down the chain to every rank."""
        self._seq += 1
        if self.rank == 0:
            frame = Frame("broadcast", meta=meta or {}, arrays=arrays or {})
        else:
            frame = self.prev.expect("broadcast")
        if self.next is not None:
            self.next.send(frame.tag, frame.meta, frame.arrays)
        return frame

    def close(self) -> None:
        for ch in (self.prev, self.next):
            if ch is not None:
                ch.close()


class TreeCommunicator:
    """Binary-heap-tree reduction: gather raw vectors up, fold at the root.

    Rank ``r``'s parent is ``(r - 1) // 2``; children are ``2r + 1`` and
    ``2r + 2``.  Each rank forwards its own vector *and* every
    descendant's, keyed by global rank, so the root receives all ``world``
    raw vectors in ``O(log world)`` hops and folds them in rank order —
    the same left-associated loop as the star root, hence bitwise equal.
    The total then broadcasts down the tree.  Bytes per link grow with
    subtree size (unlike the chain), but latency depth is logarithmic.
    """

    def __init__(
        self,
        rank: int,
        world: int,
        parent_channel: Optional[Channel] = None,
        child_channels: Optional[Sequence[Channel]] = None,
    ) -> None:
        if world <= 0:
            raise ValueError("world must be positive")
        if not 0 <= rank < world:
            raise ValueError(f"rank {rank} outside world of {world}")
        self.rank = rank
        self.world = world
        self.child_ranks = [c for c in (2 * rank + 1, 2 * rank + 2) if c < world]
        if rank > 0 and parent_channel is None:
            raise ValueError(f"rank {rank} needs a parent channel")
        if len(self.child_ranks) != len(child_channels or []):
            raise ValueError(
                f"rank {rank} has children {self.child_ranks}, "
                f"got {len(child_channels or [])} channels"
            )
        self.parent = parent_channel if rank > 0 else None
        self.children = list(child_channels or [])
        self._seq = 0

    # ------------------------------------------------------------- barrier
    def barrier(self, tag: str = "barrier", root_section=None) -> None:
        self._seq += 1
        for ch in self.children:
            ch.expect(f"{tag}/arrive")
        if self.parent is not None:
            self.parent.send(f"{tag}/arrive")
            self.parent.expect(f"{tag}/go")
        elif root_section is not None:
            root_section()
        for ch in self.children:
            ch.send(f"{tag}/go")

    # ----------------------------------------------------------- allreduce
    def allreduce_sum(self, vec: np.ndarray) -> np.ndarray:
        vec = np.ascontiguousarray(vec, dtype=np.float64)
        if self.world == 1:
            return vec.copy()
        self._seq += 1
        parts: Dict[int, np.ndarray] = {self.rank: vec}
        for child_rank, ch in zip(self.child_ranks, self.children):
            frame = ch.expect("tree/up")
            for key, arr in frame.arrays.items():
                r = int(key[1:])
                if arr.shape != vec.shape:
                    raise TransportError(
                        f"tree allreduce shape mismatch: rank {r} sent "
                        f"{arr.shape}, rank {self.rank} has {vec.shape}"
                    )
                parts[r] = arr
        if self.parent is not None:
            self.parent.send(
                "tree/up", arrays={f"r{r}": a for r, a in parts.items()}
            )
            total = self.parent.expect("tree/down").array("vec")
        else:
            if len(parts) != self.world:
                raise TransportError(
                    f"tree root gathered {sorted(parts)} of {self.world} ranks"
                )
            total = parts[0].copy()
            for r in range(1, self.world):
                total += parts[r]
        for ch in self.children:
            ch.send("tree/down", arrays={"vec": total})
        return total

    def allreduce_mean(self, vec: np.ndarray) -> np.ndarray:
        return self.allreduce_sum(vec) / self.world

    # ----------------------------------------------------------- broadcast
    def broadcast(
        self,
        arrays: Optional[Dict[str, np.ndarray]] = None,
        meta: Optional[dict] = None,
    ) -> Frame:
        """Rank 0's (arrays, meta) relayed down the tree to every rank."""
        self._seq += 1
        if self.rank == 0:
            frame = Frame("broadcast", meta=meta or {}, arrays=arrays or {})
        else:
            frame = self.parent.expect("broadcast")
        for ch in self.children:
            ch.send(frame.tag, frame.meta, frame.arrays)
        return frame

    def close(self) -> None:
        for ch in self.children:
            ch.close()
        if self.parent is not None:
            self.parent.close()


TOPOLOGIES = ("star", "ring", "tree")


def make_local_communicators(
    world: int, default_timeout: float = 120.0
) -> List[Communicator]:
    """Build a fully-wired communicator per rank over local pipes.

    Used by tests and by the launcher, which passes each communicator to
    its rank's process (the pipe ends migrate with the spawn arguments).
    """
    from .transport import pipe_channel_pair

    if world <= 0:
        raise ValueError("world must be positive")
    if world == 1:
        return [Communicator(0, 1)]
    root_sides: List[Channel] = []
    peer_sides: List[Channel] = []
    for _ in range(world - 1):
        a, b = pipe_channel_pair(default_timeout)
        root_sides.append(a)
        peer_sides.append(b)
    comms = [Communicator(0, world, peer_channels=root_sides)]
    for r in range(1, world):
        comms.append(Communicator(r, world, root_channel=peer_sides[r - 1]))
    return comms


def make_local_chain_communicators(
    world: int, default_timeout: float = 120.0, chunk_elems: int = 8192
) -> List[ChainCommunicator]:
    """A :class:`ChainCommunicator` per rank over local pipes."""
    from .transport import pipe_channel_pair

    if world <= 0:
        raise ValueError("world must be positive")
    ups: List[Optional[Channel]] = [None] * world  # rank r's channel to r-1
    downs: List[Optional[Channel]] = [None] * world  # rank r's channel to r+1
    for r in range(world - 1):
        a, b = pipe_channel_pair(default_timeout)
        downs[r] = a
        ups[r + 1] = b
    return [
        ChainCommunicator(
            r, world, prev_channel=ups[r], next_channel=downs[r],
            chunk_elems=chunk_elems,
        )
        for r in range(world)
    ]


def make_local_tree_communicators(
    world: int, default_timeout: float = 120.0
) -> List[TreeCommunicator]:
    """A :class:`TreeCommunicator` per rank over local pipes."""
    from .transport import pipe_channel_pair

    if world <= 0:
        raise ValueError("world must be positive")
    parents: List[Optional[Channel]] = [None] * world
    child_chans: List[List[Channel]] = [[] for _ in range(world)]
    for r in range(1, world):
        a, b = pipe_channel_pair(default_timeout)
        child_chans[(r - 1) // 2].append(a)
        parents[r] = b
    return [
        TreeCommunicator(
            r, world, parent_channel=parents[r], child_channels=child_chans[r]
        )
        for r in range(world)
    ]


def make_topology_communicators(
    topology: str, world: int, default_timeout: float = 120.0
):
    """Local-pipe communicators for any named topology (launcher/bench)."""
    if topology == "star":
        return make_local_communicators(world, default_timeout)
    if topology == "ring":
        return make_local_chain_communicators(world, default_timeout)
    if topology == "tree":
        return make_local_tree_communicators(world, default_timeout)
    raise ValueError(f"unknown topology {topology!r}; choose from {TOPOLOGIES}")
