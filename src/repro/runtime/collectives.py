"""Collective operations over the frame transport (star topology).

The runtime's collectives mirror the contract of
:mod:`repro.parallel.allreduce` — gradient *averaging* across replicas and
root-to-all weight broadcast — but move real bytes between OS processes
instead of sharing one weight copy.  The logical and process execution
paths therefore agree on semantics: ``allreduce(vec)`` returns the same
deterministic rank-ordered reduction on every rank, accumulated in float64
exactly like :func:`repro.parallel.allreduce.allreduce_gradients`.

Topology is a star: the root rank owns one channel per peer, gathers
contributions in rank order, reduces, and fans the result back out.  For
the model sizes this paper cares about (the whole point of §3.2 is that
TGNN weights are *tiny* relative to node memory) a star over local pipes is
bandwidth-trivial; the interface — not the topology — is the contract, and
a ring could be swapped in behind it without touching callers.

Every blocking wait uses the channel timeout, so a dead peer breaks the
collective with :class:`~repro.runtime.transport.TransportTimeout` rather
than hanging the fleet.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .transport import Channel, Frame, TransportError


class Communicator:
    """Rank-aware collective endpoint for one process group.

    The root holds ``peers`` (channel per non-root rank, index ``r - 1``);
    non-roots hold a single ``root`` channel.  Ranks are dense ``0..world``
    within this communicator — a sub-communicator (say, the ``i`` shards of
    one memory group) renumbers its members.
    """

    def __init__(
        self,
        rank: int,
        world: int,
        root_channel: Optional[Channel] = None,
        peer_channels: Optional[Sequence[Channel]] = None,
    ) -> None:
        if world <= 0:
            raise ValueError("world must be positive")
        if not 0 <= rank < world:
            raise ValueError(f"rank {rank} outside world of {world}")
        self.rank = rank
        self.world = world
        if world == 1:
            self.peers: List[Channel] = []
            self.root: Optional[Channel] = None
        elif rank == 0:
            if peer_channels is None or len(peer_channels) != world - 1:
                raise ValueError(f"root needs {world - 1} peer channels")
            self.peers = list(peer_channels)
            self.root = None
        else:
            if root_channel is None:
                raise ValueError("non-root ranks need a root channel")
            self.peers = []
            self.root = root_channel
        self._seq = 0  # collective sequence number (protocol debugging)

    # ------------------------------------------------------------- barrier
    def barrier(self, tag: str = "barrier", root_section=None) -> None:
        """Block until every rank has arrived.

        ``root_section`` runs on the root between collecting the arrivals
        and releasing the fleet — i.e. while every rank is provably idle.
        The runtime uses it for group-exclusive state transitions (the
        wrap-around memory reset) without a second round trip.
        """
        if self.world == 1:
            if root_section is not None:
                root_section()
            return
        self._seq += 1
        meta = {"seq": self._seq}
        if self.rank == 0:
            for ch in self.peers:
                ch.expect(f"{tag}/arrive")
            if root_section is not None:
                root_section()
            for ch in self.peers:
                ch.send(f"{tag}/go", meta)
        else:
            self.root.send(f"{tag}/arrive", meta)
            self.root.expect(f"{tag}/go")

    # ----------------------------------------------------------- allreduce
    def allreduce_sum(self, vec: np.ndarray) -> np.ndarray:
        """Element-wise sum of ``vec`` across ranks; same result everywhere.

        Accumulation is float64 in rank order (0, 1, …) regardless of
        message arrival order, so the reduction is deterministic — a
        prerequisite for keeping per-rank optimizer replicas bitwise in
        sync without re-broadcasting weights every step.
        """
        vec = np.ascontiguousarray(vec, dtype=np.float64)
        if self.world == 1:
            return vec.copy()
        self._seq += 1
        if self.rank == 0:
            parts: Dict[int, np.ndarray] = {0: vec}
            for idx, ch in enumerate(self.peers):
                frame = ch.expect("allreduce/part")
                part = frame.array("vec")
                if part.shape != vec.shape:
                    raise TransportError(
                        f"allreduce shape mismatch: rank {idx + 1} sent "
                        f"{part.shape}, root has {vec.shape}"
                    )
                parts[idx + 1] = part
            total = parts[0].copy()
            for r in range(1, self.world):
                total += parts[r]
            for ch in self.peers:
                ch.send("allreduce/total", arrays={"vec": total})
            return total
        self.root.send("allreduce/part", arrays={"vec": vec})
        return self.root.expect("allreduce/total").array("vec")

    def allreduce_mean(self, vec: np.ndarray) -> np.ndarray:
        return self.allreduce_sum(vec) / self.world

    # ----------------------------------------------------------- broadcast
    def broadcast(
        self,
        arrays: Optional[Dict[str, np.ndarray]] = None,
        meta: Optional[dict] = None,
    ) -> Frame:
        """Root's (arrays, meta) delivered to every rank (root included)."""
        self._seq += 1
        if self.rank == 0:
            frame = Frame("broadcast", meta=meta or {}, arrays=arrays or {})
            for ch in self.peers:
                ch.send(frame.tag, frame.meta, frame.arrays)
            return frame
        return self.root.expect("broadcast")

    def gather_meta(self, meta: dict) -> Optional[List[dict]]:
        """Root receives every rank's metadata dict (rank order); peers None."""
        self._seq += 1
        if self.world == 1:
            return [meta]
        if self.rank == 0:
            out = [meta]
            for ch in self.peers:
                out.append(dict(ch.expect("gather/meta").meta))
            return out
        self.root.send("gather/meta", meta)
        return None

    # ------------------------------------------------ ordered token chain
    def serial_section(self, fn, tag: str = "chain") -> None:
        """Run ``fn()`` on every rank, strictly in rank order.

        The write-ordering primitive behind shared-memory commits: rank 0
        runs first, then hands the token to rank 1, and so on.  Implemented
        through the star (the root relays the token), so it needs no extra
        channels beyond the ones the communicator already holds.
        """
        self._seq += 1
        if self.rank == 0:
            fn()
            for ch in self.peers:        # release ranks 1..n in order
                ch.send(f"{tag}/token")
                ch.expect(f"{tag}/done")
        else:
            self.root.expect(f"{tag}/token")
            fn()
            self.root.send(f"{tag}/done")

    def close(self) -> None:
        for ch in self.peers:
            ch.close()
        if self.root is not None:
            self.root.close()


def make_local_communicators(
    world: int, default_timeout: float = 120.0
) -> List[Communicator]:
    """Build a fully-wired communicator per rank over local pipes.

    Used by tests and by the launcher, which passes each communicator to
    its rank's process (the pipe ends migrate with the spawn arguments).
    """
    from .transport import pipe_channel_pair

    if world <= 0:
        raise ValueError("world must be positive")
    if world == 1:
        return [Communicator(0, 1)]
    root_sides: List[Channel] = []
    peer_sides: List[Channel] = []
    for _ in range(world - 1):
        a, b = pipe_channel_pair(default_timeout)
        root_sides.append(a)
        peer_sides.append(b)
    comms = [Communicator(0, world, peer_channels=root_sides)]
    for r in range(1, world):
        comms.append(Communicator(r, world, root_channel=peer_sides[r - 1]))
    return comms
