"""repro.runtime — real multi-process execution backend for i×j×k plans.

Where ``repro.train`` *simulates* a DistTGL fleet with logical trainers in
one process, this package *is* the fleet: real OS processes, shared-memory
node state, wire collectives.  The two backends implement one
gradient-reduction contract
(:class:`repro.parallel.allreduce.TermGradAccumulator`), so
``Session.fit(backend="process")`` reproduces the logical trainer's result
— losses, metrics, final state — **bitwise at every world size**; every
experiment keeps one declarative description and gains measured
parallelism.

Layers, bottom up:

* :mod:`~repro.runtime.transport` — length-prefixed numpy frames over
  pipes/sockets (pickle-free array payloads);
* :mod:`~repro.runtime.collectives` — allreduce / broadcast / barrier /
  rank-ordered serial sections over the transport, semantics matching
  ``repro.parallel.allreduce``;
* :mod:`~repro.runtime.sharedmem` — node memory + mailbox segments in
  ``multiprocessing.shared_memory`` (§3.2.3's k-reader state, for real);
* :mod:`~repro.runtime.worker` — the rank entrypoint: rebuild the shard
  from the config via the ``repro.api`` registries, run the fused
  BatchPrep training loop, sync gradients every step;
* :mod:`~repro.runtime.launcher` — :class:`ProcessGroup` spawn / join /
  failure propagation, the ``fit`` orchestration, and the elastic
  supervisor: commit-slab rollback, dead-rank respawn, bounded restarts
  (:class:`RecoveryPolicy`) — a faulted fit still finishes bitwise equal
  to an unfaulted one;
* :mod:`~repro.runtime.serving` — :class:`ProcessServingCluster`,
  process replicas with their own model copies over one shared serving
  state (bit-identical to the threaded cluster);
* :mod:`~repro.runtime.fabric` — the multi-host generalization: host
  agents (``repro.cli agent``) joined over a TCP rendezvous, rank-level
  socket wiring with star/ring/tree collective topologies, the ``j``
  dimension fanned out as pipelined ranks, and machine-loss recovery —
  ``Session.fit(backend="fabric")`` runs the full ``i×j×k@machines``
  plan bitwise-equal to local;
* :mod:`~repro.runtime.bench` — the 1→2→4 worker scaling benchmark behind
  ``python -m repro.cli runtime-bench`` (``BENCH_runtime.json``).
"""

from .collectives import (
    ChainCommunicator,
    Communicator,
    TreeCommunicator,
    make_local_chain_communicators,
    make_local_communicators,
    make_local_tree_communicators,
    make_topology_communicators,
)
from .fabric import FabricLauncher, run_fabric_fit
from .launcher import (
    ProcessGroup,
    RecoveryPolicy,
    WorkerFailure,
    apply_process_result,
    run_process_fit,
)
from .serving import ProcessPendingResult, ProcessServingCluster
from .sharedmem import (
    CommitSlab,
    SharedGroupState,
    SharedStateSpec,
    create_group_states,
)
from .transport import (
    Channel,
    Frame,
    PipeEndpoint,
    RetryPolicy,
    SocketEndpoint,
    TransportError,
    TransportTimeout,
    connect_with_retry,
    decode_frame,
    encode_frame,
    pipe_channel_pair,
    socket_channel,
)

__all__ = [
    "ChainCommunicator",
    "Channel",
    "CommitSlab",
    "Communicator",
    "FabricLauncher",
    "Frame",
    "RecoveryPolicy",
    "RetryPolicy",
    "PipeEndpoint",
    "ProcessGroup",
    "ProcessPendingResult",
    "ProcessServingCluster",
    "SharedGroupState",
    "SharedStateSpec",
    "SocketEndpoint",
    "TransportError",
    "TransportTimeout",
    "TreeCommunicator",
    "WorkerFailure",
    "apply_process_result",
    "connect_with_retry",
    "create_group_states",
    "decode_frame",
    "encode_frame",
    "make_local_chain_communicators",
    "make_local_communicators",
    "make_local_tree_communicators",
    "make_topology_communicators",
    "pipe_channel_pair",
    "run_fabric_fit",
    "run_process_fit",
    "socket_channel",
]
