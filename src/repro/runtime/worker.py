"""Rank entrypoint for the process runtime's training workers.

Each worker **rebuilds** its slice of the experiment from the declarative
:class:`~repro.api.config.ExperimentConfig` — dataset, sampler, model,
decoder, negative stores all resolve through the ``repro.api`` registries,
exactly as in the parent — so nothing crosses the process boundary except
the config dict, the shared-memory segment names and the initial weight
broadcast.  That is the real system's contract: a rank can live on another
host and still reconstruct identical state from the same description.

Rank layout: ``world = i × k``; rank ``r`` is shard ``s = r % i`` of memory
group ``m = r // i``.  The group's ``i`` shards map one shared node-memory /
mailbox segment (§3.2.3's memory-parallel reads made real); epoch
parallelism ``j`` stays inside the rank, because the ``j`` sub-steps of a
block share the rank's cached preparations by construction.

The execution loop is the logical trainer's loop
(:meth:`repro.train.distributed.DistTGLTrainer.train`) re-derived for real
parallelism, preserving its semantics:

* **canonical pass** — per block batch: a group barrier (whose root section
  applies the wrap-around memory reset), shard-local BatchPrep reads of the
  shared state, a second barrier (readers before writers), the shard
  forward, then the write-back committed through a rank-ordered serial
  section.  Shards are chronological slices, so ordered commits reproduce
  the logical trainer's single fancy-assignment write-back.
* **gradient step** — the rank's block of ``j`` loss terms, each weighted
  ``(shard/global batch size) / (j·k)`` and backpropagated alone into a
  float64 :class:`~repro.parallel.allreduce.TermGradAccumulator` partial;
  the all-reduce **sums** the rank partials in rank order — the very loop
  the logical trainer runs over its blocks — and every rank applies the
  identical reduced gradient to its own Adam replica, so replicas stay
  bitwise in sync without per-step weight broadcast.  The partial carries a
  per-parameter presence mask: parameters untouched on every rank keep
  ``grad=None`` (Adam must skip them, exactly as it does locally).
* **evaluation** — rank 0 evaluates at the logical cadence (group 0 sweep
  boundaries) from the shared group-0 state while the fleet waits at a
  barrier; the negative-group sweep offset advances on every rank.

Because both backends execute the identical float operations in the
identical order, the process backend reproduces the logical trainer's
``TrainResult`` — losses *and* metrics — **bitwise** at any world size.
Nothing weaker survives contact with Adam: its early steps behave like
``lr·sign(g)``, so even 1e-7 gradient noise flips sub-noise elements by
``±lr`` within an iteration or two.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..api.config import ExperimentConfig
from ..models.tgn import TGN, DirectMemoryView
from ..nn import clip_grad_norm, use_fused
from ..parallel.allreduce import TermGradAccumulator, load_reduced
from .collectives import Communicator
from .sharedmem import SharedGroupState, SharedStateSpec


# ------------------------------------------------------------- entrypoint
def train_worker(
    rank: int,
    channel,
    *,
    config_dict: dict,
    shared_specs: List[dict],
    world_comm: Communicator,
    group_comm: Communicator,
    train_meta: dict,
    init_state: Optional[dict] = None,
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Execute one rank of a process-parallel ``fit``; returns the result
    frame payload (rank 0 carries the trained state, peers ack)."""
    from ..train.distributed import DistTGLTrainer

    cfg = ExperimentConfig.from_dict(config_dict)
    i, j, k = cfg.parallel.i, cfg.parallel.j, cfg.parallel.k
    world = i * k
    if world_comm.world != world or not 0 <= rank < world:
        raise ValueError(f"rank {rank} inconsistent with plan {cfg.parallel.label()}")
    m, s = rank // i, rank % i

    dataset = cfg.build_dataset()
    trainer = DistTGLTrainer(dataset, cfg.parallel, cfg.trainer_spec(), rank=rank)
    spec = trainer.spec

    # ---- shared state: this group's segment replaces the private arrays
    shared = SharedGroupState(SharedStateSpec.from_dict(shared_specs[m]), create=False)
    own_group = trainer.groups[m]
    own_group.memory = shared.memory
    own_group.mailbox = shared.mailbox
    own_group.view = DirectMemoryView(shared.memory, shared.mailbox)
    for g in trainer.groups:
        if g.index != m:          # cursor bookkeeping only; free the arrays
            g.memory = None
            g.mailbox = None
            g.view = None
    view = own_group.view

    # ---- resume state: rank 0 carries the parent trainer's snapshot
    # (weights as Module.to_bytes blobs, optimizer moments, cursors) and
    # broadcasts it, so every rank continues the session exactly where the
    # parent left off — the same semantics as a local ``trainer.train``
    from .launcher import load_trainer_state

    if rank == 0:
        if init_state is None:
            raise ValueError("rank 0 needs the parent trainer's init_state")
        state = world_comm.broadcast(
            arrays=init_state["arrays"], meta=init_state["meta"]
        )
    else:
        state = world_comm.broadcast()
    load_trainer_state(trainer, dict(state.meta), state.arrays)
    world_comm.barrier("start")

    # ---- iteration plan (the logical trainer's fairness arithmetic)
    epochs = int(train_meta.get("epochs", cfg.train.epochs))
    max_iterations: Optional[int] = train_meta.get("max_iterations")
    eval_every = int(train_meta.get("eval_every_sweeps", 1))
    verbose = bool(train_meta.get("verbose", False))
    total_batch_visits = epochs * trainer.num_batches
    visits_per_iteration = j * k
    iterations = max(1, total_batch_visits // visits_per_iteration)
    if max_iterations is not None:
        iterations = min(iterations, int(max_iterations))

    history: List[dict] = []
    recent: List[float] = []
    cache: Optional[list] = None
    # cursor bookkeeping continues from the resumed state, like the groups'
    # position/sweep counters (a fresh run starts everything at -1/0)
    prev_batch = {g.index: g.prev_batch for g in trainer.groups}
    substep = 0
    last_eval_sweeps = 0
    sync_time = 0.0
    commit_work = 0.0
    import time as _time

    loop_start = _time.perf_counter()
    cpu_start = _time.process_time()

    def timed(fn, *args, **kwargs):
        nonlocal sync_time
        t0 = _time.perf_counter()
        out = fn(*args, **kwargs)
        sync_time += _time.perf_counter() - t0
        return out

    for _ in range(iterations):
        with use_fused(spec.fused):
            if substep == 0:
                # every rank advances every group's cursor (integers only);
                # compute happens for the rank's own (group, shard) slice
                blocks = {g.index: g.next_block(j) for g in trainer.groups}
                for g_idx, block in blocks.items():
                    if g_idx != m:
                        prev_batch[g_idx] = block[-1]
                cache = []   # this rank's block entries, one per sub-batch r
                for b_idx in blocks[m]:
                    wrap = b_idx <= prev_batch[m]
                    prev_batch[m] = b_idx

                    def reset_if_wrap():
                        if wrap:
                            shared.memory.reset()
                            shared.mailbox.reset()

                    # barrier 1: previous batch's writes are committed and
                    # the leader applies the wrap reset before any read
                    timed(group_comm.barrier, "pre-read", root_section=reset_if_wrap)
                    batch = trainer.loader.batch(b_idx)
                    shard = batch.split_local(i)[s] if i > 1 else batch
                    # read + forward phases are the trainer's own shard
                    # methods (one implementation, so the backends cannot
                    # drift); only the cross-process ordering lives here
                    read = trainer._read_shard(shard, view)
                    # barrier 2: every shard finished reading shared state
                    timed(group_comm.barrier, "post-read")
                    entry, wb = trainer._forward_shard(read, batch.size)

                    def commit():
                        # the commit itself is compute, not synchronization:
                        # keep it out of sync_time so sync_frac reports only
                        # genuine waiting
                        nonlocal commit_work
                        t0 = _time.perf_counter()
                        if wb is not None:
                            TGN.apply_writeback(wb, shared.memory, shared.mailbox)
                        commit_work += _time.perf_counter() - t0

                    # rank-ordered commit: chronological shards in sequence
                    # reproduce the logical single-writer write-back
                    timed(group_comm.serial_section, commit, tag="writeback")
                    cache.append(entry)

            # ---- gradient step: this rank's block of j loss terms through
            # the trainer's own per-term arithmetic (one shared method, so
            # the backends cannot drift) into the float64 block partial
            acc = TermGradAccumulator(trainer.optimizer.params)
            for r in range(j):
                entry = cache[r]
                if entry is not None:
                    trainer._accumulate_term(acc, entry, r, substep)
            vec = acc.to_vector()
            if world > 1:
                # rank-ordered float64 sum at the root == the logical
                # trainer's block-order reduce_partials, bitwise
                vec = timed(world_comm.allreduce_sum, vec)
            global_loss = load_reduced(trainer.optimizer.params, vec)
            clip_grad_norm(trainer.optimizer.params, spec.grad_clip)
            trainer.optimizer.step()
            recent.append(global_loss)

        substep = (substep + 1) % j
        trainer._iteration += 1

        group0 = trainer.groups[0]
        if group0.sweeps_completed >= last_eval_sweeps + eval_every:
            last_eval_sweeps = group0.sweeps_completed
            trainer._sweep_negative_offset += j
            timed(world_comm.barrier, "pre-eval")
            if rank == 0:
                val = trainer._evaluate_split("val", warm_group=group0)
                point = {
                    "iteration": trainer._iteration,
                    "edges_traversed": trainer._iteration
                    * visits_per_iteration
                    * trainer.global_batch,
                    "train_loss": float(np.mean(recent)),
                    "val_metric": val.metric,
                }
                history.append(point)
                if verbose:
                    print(
                        f"[{cfg.parallel.label()}|process w{world}] "
                        f"it={trainer._iteration} loss={point['train_loss']:.4f} "
                        f"val={val.metric:.4f}"
                    )
            recent.clear()
            timed(world_comm.barrier, "post-eval")

    loop_elapsed = _time.perf_counter() - loop_start
    loop_cpu = _time.process_time() - cpu_start
    world_comm.barrier("end")
    bench = world_comm.gather_meta(
        {
            "rank": rank,
            "loop_s": loop_elapsed,
            # sync = time inside collectives minus the commit work executed
            # under the serial section (which is compute, not waiting)
            "sync_s": max(sync_time - commit_work, 0.0),
            "cpu_s": loop_cpu,
        }
    )

    # ---- finalization (rank 0 only): trailing eval, test metric, state out
    if rank != 0:
        shared.close()
        return {"rank": rank, "ok": True}, {}

    if not history:
        val = trainer._evaluate_split("val", warm_group=trainer.groups[0])
        history.append(
            {
                "iteration": trainer._iteration,
                "edges_traversed": trainer._iteration
                * visits_per_iteration
                * trainer.global_batch,
                "train_loss": float(np.mean(recent)) if recent else float("nan"),
                "val_metric": val.metric,
            }
        )
    vals = [h["val_metric"] for h in history]
    best_idx = int(np.argmax(vals))
    test = trainer._evaluate_split("test", warm_group=trainer.groups[0])

    # the result payload IS a trainer snapshot (one wire layout, owned by
    # the launcher) plus the run's outcome metadata
    from .launcher import snapshot_trainer_state

    for g in trainer.groups:
        g.prev_batch = prev_batch[g.index]
    snap = snapshot_trainer_state(trainer)
    meta = {
        **snap["meta"],
        "rank": 0,
        "ok": True,
        "config_label": cfg.parallel.label(),
        "history": history,
        "best_val": vals[best_idx],
        "iterations_to_best": history[best_idx]["iteration"],
        "iterations_run": trainer._iteration,
        "test_metric": test.metric,
        "bench": bench,
        "world": world,
    }
    shared.close()
    return meta, snap["arrays"]
