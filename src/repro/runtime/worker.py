"""Rank entrypoint for the process runtime's training workers.

Each worker **rebuilds** its slice of the experiment from the declarative
:class:`~repro.api.config.ExperimentConfig` — dataset, sampler, model,
decoder, negative stores all resolve through the ``repro.api`` registries,
exactly as in the parent — so nothing crosses the process boundary except
the config dict, the shared-memory segment names and the commit slab that
carries the resumable run state.  That is the real system's contract: a
rank can live on another host and still reconstruct identical state from
the same description.

Rank layout: ``world = i × k``; rank ``r`` is shard ``s = r % i`` of memory
group ``m = r // i``.  The group's ``i`` shards map one shared node-memory /
mailbox segment (§3.2.3's memory-parallel reads made real); epoch
parallelism ``j`` stays inside the rank, because the ``j`` sub-steps of a
block share the rank's cached preparations by construction.

The execution loop is the logical trainer's loop
(:meth:`repro.train.distributed.DistTGLTrainer.train`) re-derived for real
parallelism, preserving its semantics:

* **canonical pass** — per block batch: a group barrier (whose root section
  applies the wrap-around memory reset), shard-local BatchPrep reads of the
  shared state, a second barrier (readers before writers), the shard
  forward, then the write-back committed through a rank-ordered serial
  section.  Shards are chronological slices, so ordered commits reproduce
  the logical trainer's single fancy-assignment write-back.
* **gradient step** — the rank's block of ``j`` loss terms, each weighted
  ``(shard/global batch size) / (j·k)`` and backpropagated alone into a
  float64 :class:`~repro.parallel.allreduce.TermGradAccumulator` partial;
  the all-reduce **sums** the rank partials in rank order — the very loop
  the logical trainer runs over its blocks — and every rank applies the
  identical reduced gradient to its own Adam replica, so replicas stay
  bitwise in sync without per-step weight broadcast.
* **evaluation** — rank 0 evaluates at the logical cadence (group 0 sweep
  boundaries) from the shared group-0 state while the fleet waits at a
  barrier; the negative-group sweep offset advances on every rank.

Fault tolerance (the elastic-restart protocol, parent side in
:mod:`repro.runtime.launcher`):

* **commit** — at every ``commit_every``-th block boundary the fleet holds
  a two-barrier window: between the barriers each group leader copies its
  live segment into the inactive shadow slot and rank 0 serializes the
  resumable run (trainer snapshot + history/recent/eval bookkeeping) into
  the inactive :class:`~repro.runtime.sharedmem.CommitSlab` slot; the
  second barrier's root section seals the slab — the atomic flip that
  makes the new commit current only after every byte of it is durable.
* **park** — any :class:`~repro.runtime.transport.TransportError` inside
  the loop (a peer crashed, wedged, or dropped its pipes) makes the rank
  close its collectives, report ``parked`` on its control channel, and
  wait.  The launcher restores the live segments from the sealed shadows,
  respawns dead ranks, and answers ``resume`` with the next communicator
  generation; the rank reloads the sealed commit and re-enters the loop.
  Because both the rollback target and the re-executed arithmetic are
  bit-exact, a recovered run finishes **bitwise identical** to an
  unfaulted one.

Failpoints: the loop evaluates the ``worker.step`` failpoint (keyed on the
global iteration) each iteration, and ``worker.finalize`` (hit-counter
keyed) right after the end barrier — the finalization-window drill.
Respawned ranks neutralize inherited failpoints so a crash schedule fires
once, not once per restart.

Finalization window: the loop seals a *final* commit before the end
barrier, so a fault at any later instant (trailing eval, bench gather,
result report) recovers by replaying finalization from that sealed commit
— the launcher resumes parked ranks with ``finalize=True`` (or respawns
dead ones with ``finalize_only=True``) and they finish without rejoining
any collective, still bitwise identical (the bench gather alone is lost).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..api.config import ExperimentConfig
from ..models.tgn import TGN, DirectMemoryView
from ..nn import clip_grad_norm, use_fused
from ..obs import configure as obs_configure
from ..obs import flush as obs_flush
from ..obs import instant as obs_instant
from ..obs import span
from ..obs.metrics import phase_totals
from ..parallel.allreduce import TermGradAccumulator, load_reduced
from ..testing import failpoints
from .collectives import Communicator
from .sharedmem import CommitSlab, SharedGroupState, SharedStateSpec
from .transport import TransportError


def initial_book() -> dict:
    """A fresh run's loop bookkeeping (the mutable half of a commit)."""
    return {"history": [], "recent": [], "last_eval_sweeps": 0}


def _attach_states(specs: List[dict]) -> List[SharedGroupState]:
    return [
        SharedGroupState(SharedStateSpec.from_dict(d), create=False) for d in specs
    ]


# ------------------------------------------------------------- entrypoint
def train_worker(
    rank: int,
    channel,
    *,
    config_dict: dict,
    shared_specs: List[dict],
    commit_spec: Optional[dict] = None,
    shadow_specs: Optional[List[List[dict]]] = None,
    world_comms: Optional[Dict[int, Communicator]] = None,
    group_comms: Optional[Dict[int, Communicator]] = None,
    reduce_comms: Optional[Dict[int, object]] = None,
    generation: int = 0,
    train_meta: Optional[dict] = None,
    clear_failpoints: bool = False,
    finalize_only: bool = False,
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Execute one rank of a process-parallel ``fit``; returns the result
    frame payload (rank 0 carries the trained state, peers ack)."""
    from ..train.distributed import DistTGLTrainer
    from .launcher import decode_commit, encode_commit

    if clear_failpoints:
        # a respawned rank must not re-trip the failure that killed its
        # predecessor: the env var still carries the schedule, ignore it
        failpoints.neutralize()

    train_meta = train_meta or {}
    # span tracing: the launcher resolves the trace directory (env/config)
    # once and ships it in train_meta; each rank appends to its own file so
    # a SIGKILLed peer cannot corrupt anyone else's trace
    if train_meta.get("trace_dir"):
        obs_configure(train_meta["trace_dir"], rank=rank, lane=f"rank{rank}")
    cfg = ExperimentConfig.from_dict(config_dict)
    i, j, k = cfg.parallel.i, cfg.parallel.j, cfg.parallel.k
    world = i * k
    world_comm = world_comms[generation]
    group_comm = group_comms[generation]
    # the gradient allreduce optionally rides a ring/tree communicator
    # (TrainConfig.topology); control traffic stays on the star
    reduce_comm = reduce_comms[generation] if reduce_comms else world_comm
    if world_comm.world != world or not 0 <= rank < world:
        raise ValueError(f"rank {rank} inconsistent with plan {cfg.parallel.label()}")
    m, s = rank // i, rank % i

    dataset = cfg.build_dataset()
    trainer = DistTGLTrainer(dataset, cfg.parallel, cfg.trainer_spec(), rank=rank)
    spec = trainer.spec

    # ---- shared state: this group's segment replaces the private arrays
    shared = SharedGroupState(SharedStateSpec.from_dict(shared_specs[m]), create=False)
    own_group = trainer.groups[m]
    own_group.memory = shared.memory
    own_group.mailbox = shared.mailbox
    own_group.view = DirectMemoryView(shared.memory, shared.mailbox)
    for g in trainer.groups:
        if g.index != m:          # cursor bookkeeping only; free the arrays
            g.memory = None
            g.mailbox = None
            g.view = None
    view = own_group.view

    # ---- recovery state: the commit slab is the single source of truth for
    # the resumable run — fresh starts load the parent's commit 0, restarts
    # load whatever the fleet last sealed.  Group leaders (shard 0) also map
    # their group's two shadow slots for the commit-window copies.
    if commit_spec is None:
        raise ValueError("train_worker needs a commit slab (commit_spec)")
    slab = CommitSlab.attach(commit_spec)
    shadows: Optional[List[SharedGroupState]] = None
    if s == 0 and shadow_specs is not None:
        shadows = _attach_states(shadow_specs[m])

    def load_committed() -> dict:
        meta, arrays, book = decode_commit(slab.read())
        from .launcher import load_trainer_state

        load_trainer_state(trainer, meta, arrays)
        return book

    book = load_committed()

    # ---- iteration plan: the launcher owns the fairness arithmetic and
    # ships one absolute target, so fresh runs, session continues and
    # post-crash rollbacks all execute "until iteration == target"
    target = int(train_meta["target_iteration"])
    eval_every = int(train_meta.get("eval_every_sweeps", 1))
    verbose = bool(train_meta.get("verbose", False))
    commit_every = max(1, int(train_meta.get("commit_every", 1)))
    visits_per_iteration = j * k

    history: List[dict] = list(book["history"])
    recent: List[float] = list(book["recent"])
    last_eval_sweeps = int(book["last_eval_sweeps"])
    cache: Optional[list] = None
    prev_batch = {g.index: g.prev_batch for g in trainer.groups}
    substep = 0
    blocks_done = 0
    sync_time = 0.0
    commit_work = 0.0
    import time as _time

    loop_start = _time.perf_counter()
    cpu_start = _time.process_time()

    def synced(phase, fn, *args, **kwargs):
        """Run a collective under telemetry: one ``cat="sync"`` span named
        after the phase (``barrier``/``allreduce``/``serial``) plus the
        always-on ``sync_time`` accounting the bench reports."""
        nonlocal sync_time
        tag = args[0] if args and isinstance(args[0], str) else kwargs.get("tag")
        span_args = {"cat": "sync"}
        if tag is not None:
            span_args["tag"] = tag
        with span(phase, **span_args):
            t0 = _time.perf_counter()
            out = fn(*args, **kwargs)
            sync_time += _time.perf_counter() - t0
        return out

    def commit_window() -> None:
        """Two-barrier durable commit of the whole resumable run."""
        synced("barrier", world_comm.barrier, "commit/enter")
        slot = slab.next_slot
        t0 = _time.perf_counter()
        with span("commit", cat="commit", slot=int(slot)):
            if shadows is not None:
                shadows[slot].memory.copy_from(shared.memory)
                shadows[slot].mailbox.copy_from(shared.mailbox)
            if rank == 0:
                for g in trainer.groups:
                    g.prev_batch = prev_batch[g.index]
                slab.write(
                    slot,
                    encode_commit(
                        trainer,
                        {
                            "history": history,
                            "recent": recent,
                            "last_eval_sweeps": last_eval_sweeps,
                        },
                    ),
                )
        nonlocal commit_work
        commit_work += _time.perf_counter() - t0
        iteration = trainer._iteration
        synced(
            "barrier",
            world_comm.barrier,
            "commit/seal",
            root_section=lambda: slab.seal(slot, iteration),
        )
        # a sealed commit is a durable rollback point — make the trace as
        # durable, so a kill after this instant still shows the full run-up
        obs_flush()

    def run_loop() -> None:
        nonlocal cache, substep, blocks_done, last_eval_sweeps
        synced("barrier", world_comm.barrier, "start")
        while trainer._iteration < target:
            failpoints.fire(
                "worker.step",
                rank=rank,
                step=trainer._iteration,
                pipe_drop=lambda: (
                    world_comm.close(),
                    group_comm.close(),
                    reduce_comm.close(),
                ),
            )
            with use_fused(spec.fused):
                if substep == 0:
                    # every rank advances every group's cursor (integers
                    # only); compute happens for the rank's own slice
                    blocks = {g.index: g.next_block(j) for g in trainer.groups}
                    for g_idx, block in blocks.items():
                        if g_idx != m:
                            prev_batch[g_idx] = block[-1]
                    cache = []   # this rank's block entries, one per sub-batch
                    for b_idx in blocks[m]:
                        wrap = b_idx <= prev_batch[m]
                        prev_batch[m] = b_idx

                        def reset_if_wrap():
                            if wrap:
                                shared.memory.reset()
                                shared.mailbox.reset()

                        # barrier 1: previous batch's writes are committed
                        # and the leader applies the wrap reset pre-read
                        synced(
                            "barrier",
                            group_comm.barrier,
                            "pre-read",
                            root_section=reset_if_wrap,
                        )
                        batch = trainer.loader.batch(b_idx)
                        shard = batch.split_local(i)[s] if i > 1 else batch
                        # read + forward phases are the trainer's own shard
                        # methods (one implementation, so the backends
                        # cannot drift); only the ordering lives here
                        read = trainer._read_shard(shard, view)
                        # barrier 2: every shard finished reading shared
                        synced("barrier", group_comm.barrier, "post-read")
                        entry, wb = trainer._forward_shard(
                            read, batch.size, row=len(cache)
                        )

                        def commit():
                            # the writeback is compute, not waiting: keep
                            # it out of sync_time
                            nonlocal commit_work
                            t0 = _time.perf_counter()
                            with span("writeback", cat="commit"):
                                if wb is not None:
                                    TGN.apply_writeback(
                                        wb, shared.memory, shared.mailbox
                                    )
                            commit_work += _time.perf_counter() - t0

                        # rank-ordered commit: chronological shards in
                        # sequence reproduce the logical single-writer pass
                        synced(
                            "serial", group_comm.serial_section, commit,
                            tag="writeback",
                        )
                        cache.append(entry)

                # ---- gradient step: this rank's block of j loss terms
                # through the trainer's own per-term arithmetic into the
                # float64 block partial
                acc = TermGradAccumulator(trainer.optimizer.params)
                for r in range(j):
                    entry = cache[r]
                    if entry is not None:
                        trainer._accumulate_term(acc, entry, r, substep)
                vec = acc.to_vector()
                if world > 1:
                    # rank-ordered float64 sum == the logical trainer's
                    # block-order reduce_partials, bitwise on any topology
                    vec = synced("allreduce", reduce_comm.allreduce_sum, vec)
                global_loss = load_reduced(trainer.optimizer.params, vec)
                clip_grad_norm(trainer.optimizer.params, spec.grad_clip)
                trainer.optimizer.step()
                recent.append(global_loss)

            substep = (substep + 1) % j
            trainer._iteration += 1

            group0 = trainer.groups[0]
            if group0.sweeps_completed >= last_eval_sweeps + eval_every:
                last_eval_sweeps = group0.sweeps_completed
                trainer._sweep_negative_offset += j
                synced("barrier", world_comm.barrier, "pre-eval")
                if rank == 0:
                    val = trainer._evaluate_split("val", warm_group=group0)
                    point = {
                        "iteration": trainer._iteration,
                        "edges_traversed": trainer._iteration
                        * visits_per_iteration
                        * trainer.global_batch,
                        "train_loss": float(np.mean(recent)),
                        "val_metric": val.metric,
                    }
                    history.append(point)
                    if verbose:
                        print(
                            f"[{cfg.parallel.label()}|process w{world}] "
                            f"it={trainer._iteration} "
                            f"loss={point['train_loss']:.4f} "
                            f"val={val.metric:.4f}"
                        )
                recent.clear()
                synced("barrier", world_comm.barrier, "post-eval")

            if substep == 0:
                blocks_done += 1
                if blocks_done % commit_every == 0:
                    commit_window()

        # final seal: make the complete end-of-run state durable *before*
        # the end barrier, so a fault at any later instant (the
        # finalization window) replays from this commit instead of
        # aborting.  The header is stable here — every seal happens at a
        # barrier all ranks passed — so the guard is deterministic.
        if slab.header[1] < trainer._iteration:
            commit_window()

        synced("barrier", world_comm.barrier, "end")
        # the canonical kill-after-end-barrier site (hit-counter keyed):
        # from here on no training collectives remain, only finalization
        failpoints.fire(
            "worker.finalize",
            rank=rank,
            pipe_drop=lambda: (
                world_comm.close(),
                group_comm.close(),
                reduce_comm.close(),
            ),
        )

    # ---- supervised execution: commit / park / rollback / resume.  A
    # finalize-only rank (respawned into the finalization window, or
    # resumed into it) skips the loop and collectives entirely: the sealed
    # final commit it loaded *is* the end-of-run state.
    bench = None
    while not finalize_only:
        try:
            run_loop()
            obs_flush()
            bench = world_comm.gather_meta(
                {
                    "rank": rank,
                    "loop_s": _time.perf_counter() - loop_start,
                    # sync = time inside collectives minus the commit work
                    # executed under them (compute, not waiting)
                    "sync_s": max(sync_time - commit_work, 0.0),
                    "cpu_s": _time.process_time() - cpu_start,
                    "commit_s": commit_work,
                    # span-fed per-phase seconds (empty unless tracing) —
                    # the bench's phase columns come from here
                    "phases": phase_totals(),
                }
            )
            break
        except TransportError as exc:
            generation, finalize = _park(
                channel, rank, exc, iteration=trainer._iteration
            )
            book = load_committed()
            history = list(book["history"])
            recent = list(book["recent"])
            last_eval_sweeps = int(book["last_eval_sweeps"])
            prev_batch = {g.index: g.prev_batch for g in trainer.groups}
            substep = 0
            blocks_done = 0
            cache = None
            if finalize:
                # the fleet sealed its final commit before the fault: no
                # collectives remain to rejoin (peers may already be gone),
                # finish from the sealed state; the bench gather is lost
                break
            world_comm = world_comms[generation]
            group_comm = group_comms[generation]
            reduce_comm = reduce_comms[generation] if reduce_comms else world_comm

    # ---- finalization (rank 0 only): trailing eval, test metric, state out
    if rank != 0:
        shared.close()
        obs_flush()
        return {"rank": rank, "ok": True}, {}

    if not history:
        val = trainer._evaluate_split("val", warm_group=trainer.groups[0])
        history.append(
            {
                "iteration": trainer._iteration,
                "edges_traversed": trainer._iteration
                * visits_per_iteration
                * trainer.global_batch,
                "train_loss": float(np.mean(recent)) if recent else float("nan"),
                "val_metric": val.metric,
            }
        )
    vals = [h["val_metric"] for h in history]
    best_idx = int(np.argmax(vals))
    test = trainer._evaluate_split("test", warm_group=trainer.groups[0])

    # the result payload IS a trainer snapshot (one wire layout, owned by
    # the launcher) plus the run's outcome metadata
    from .launcher import snapshot_trainer_state

    for g in trainer.groups:
        g.prev_batch = prev_batch[g.index]
    snap = snapshot_trainer_state(trainer)
    meta = {
        **snap["meta"],
        "rank": 0,
        "ok": True,
        "config_label": cfg.parallel.label(),
        "history": history,
        "best_val": vals[best_idx],
        "iterations_to_best": history[best_idx]["iteration"],
        "iterations_run": trainer._iteration,
        "test_metric": test.metric,
        "bench": bench,
        "world": world,
    }
    shared.close()
    obs_flush()
    return meta, snap["arrays"]


def _park(
    channel, rank: int, exc: BaseException, iteration: int = -1
) -> Tuple[int, bool]:
    """Report a collective failure and wait for the launcher's verdict.

    Returns ``(generation, finalize)``: the communicator generation to
    resume on, and whether the fault landed in the finalization window
    (resume by replaying finalization from the sealed final commit instead
    of rejoining collectives).  If the launcher is gone (or answers
    ``abort``) the worker exits instead of lingering.
    """
    # mark the park on the timeline and make the trace durable before
    # blocking — if recovery never comes, the events are already on disk
    obs_instant("park", iteration=int(iteration), error=repr(exc))
    obs_flush()
    try:
        channel.send(
            "parked",
            meta={"rank": rank, "error": repr(exc), "iteration": int(iteration)},
        )
    except Exception:
        raise SystemExit(1) from exc
    while True:
        frame = channel.recv()  # channel default timeout bounds the wait
        if frame.tag == "resume":
            return int(frame.meta["generation"]), bool(
                frame.meta.get("finalize", False)
            )
        if frame.tag == "abort":
            raise SystemExit(1)
