"""Process-group lifecycle: spawn, monitor, join, recover, propagate failures.

:class:`ProcessGroup` runs one module-level ``target`` per rank in real OS
processes (``spawn`` start method — children rebuild state from their
arguments rather than inheriting an address space, matching the runtime's
"reconstruct from config" contract).  Every rank gets a control
:class:`~repro.runtime.transport.Channel` to the parent; the worker shell
reports a ``result`` frame on success and an ``error`` frame (with the
remote traceback) on any exception.

The parent's :meth:`join` multiplexes over control channels *and* process
sentinels, so every failure mode becomes one raised
:class:`WorkerFailure` instead of a hang:

* a worker raises → its traceback travels back in the error frame;
* a worker dies without a frame (segfault, ``kill -9``) → the exit code is
  reported;
* a worker wedges → the deadline expires, the fleet is terminated, and the
  timeout is reported.

:func:`run_process_fit` is the training orchestration on top: allocate the
shared-memory segments (live node state per memory group, double-buffered
shadow slots, and one :class:`~repro.runtime.sharedmem.CommitSlab`), wire
``max_restarts + 3`` generations of collective communicators (the budget
plus headroom for same-episode retries), spawn
``i×k`` :func:`~repro.runtime.worker.train_worker` ranks under the
**elastic supervisor**, and fold rank 0's result plus the final shared
state back into a :class:`~repro.train.distributed.TrainResult` + state
dict the Session applies to its local trainer.

Elastic restart (:class:`RecoveryPolicy`): when a rank crashes, wedges or
drops its pipes mid-fit, the surviving ranks park on their control
channels (see :mod:`repro.runtime.worker`), the supervisor restores the
live segments from the last sealed commit's shadow slots, respawns the
dead ranks (failpoints neutralized), hands everyone the next communicator
generation, and the fleet rolls back to the last committed step boundary
and re-executes.  Because commits are barrier-guarded and double-buffered,
the rollback target is always a complete consistent state, and because
both backends execute bit-exact arithmetic, a recovered run finishes
**bitwise identical** to an unfaulted one.  Restarts are bounded; past the
budget the run raises :class:`WorkerFailure` exactly as before.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..obs import get_registry
from ..testing import failpoints
from ..obs.merge import merge_trace_dir
from ..obs.trace import Tracer, resolve_trace_dir
from .collectives import (
    Communicator,
    make_local_communicators,
    make_topology_communicators,
)
from .sharedmem import (
    CommitSlab,
    SharedGroupState,
    create_group_states,
    destroy_states,
)
from .transport import (
    Channel,
    Frame,
    TransportError,
    decode_frame,
    encode_frame,
    pipe_channel_pair,
)

DEFAULT_TIMEOUT = 600.0


class WorkerFailure(RuntimeError):
    """One or more ranks failed; carries per-rank diagnostics."""

    def __init__(self, failures: Dict[int, str]) -> None:
        self.failures = dict(failures)
        detail = "\n".join(
            f"--- rank {rank} ---\n{msg}" for rank, msg in sorted(failures.items())
        )
        super().__init__(f"{len(failures)} worker(s) failed:\n{detail}")


def _worker_shell(target: Callable, rank: int, channel: Channel, kwargs: dict) -> None:
    """Child-side wrapper: run the target, report result or failure."""
    try:
        meta, arrays = target(rank, channel, **kwargs)
        channel.send("result", meta=meta or {}, arrays=arrays or {})
    except BaseException:  # noqa: BLE001 - every failure must reach the parent
        try:
            channel.send("error", meta={"error": traceback.format_exc()})
        except Exception:
            pass  # parent still sees the nonzero exit code
        raise SystemExit(1)


class ProcessGroup:
    """A fleet of worker processes with failure propagation.

    Parameters
    ----------
    target:
        Module-level callable ``target(rank, channel, **kwargs) ->
        (meta, arrays)``; must be importable from the child (spawn).
    rank_kwargs:
        One kwargs dict per rank; its length defines the world size.
    timeout:
        Join deadline in seconds (also the default control-channel receive
        timeout).  Expiry terminates the fleet and raises.

    A ``ProcessGroup`` is a context manager: ``with ProcessGroup(...) as
    g: g.start().join()`` guarantees the fleet is torn down (processes
    reaped, channels closed) even when an assertion inside the block
    fails — chaos tests must never leak orphan processes.  ``shutdown``
    (and therefore ``__exit__`` and repeated ``terminate``) is idempotent.
    """

    def __init__(
        self,
        target: Callable,
        rank_kwargs: List[dict],
        *,
        name: str = "repro-rt",
        timeout: float = DEFAULT_TIMEOUT,
        start_method: str = "spawn",
    ) -> None:
        if not rank_kwargs:
            raise ValueError("need at least one rank")
        self.world = len(rank_kwargs)
        self.timeout = timeout
        ctx = mp.get_context(start_method)
        self.channels: List[Channel] = []
        self._child_channels: List[Channel] = []
        self.processes: List[mp.Process] = []
        for rank, kwargs in enumerate(rank_kwargs):
            parent_ch, child_ch = pipe_channel_pair(timeout)
            self.channels.append(parent_ch)
            self._child_channels.append(child_ch)
            self.processes.append(
                ctx.Process(
                    target=_worker_shell,
                    args=(target, rank, child_ch, kwargs),
                    name=f"{name}-{rank}",
                    daemon=True,
                )
            )
        self._started = False
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ProcessGroup":
        for p in self.processes:
            p.start()
        # start() pickled the child ends across (the resource sharer holds
        # its own dups until each child collects them), so the parent's
        # copies only waste fds and mask EOF on a dead worker's pipe
        for ch in self._child_channels:
            ch.close()
        self._child_channels.clear()
        self._started = True
        return self

    def terminate(self) -> None:
        """Kill whatever is still alive and release the channels (safe to
        call repeatedly, and before :meth:`start`)."""
        for p in self.processes:
            if self._started and p.is_alive():
                p.terminate()
        for p in self.processes:
            if self._started:
                p.join(timeout=5.0)
                if p.is_alive():  # pragma: no cover - last resort
                    p.kill()
                    p.join(timeout=5.0)
        for ch in self.channels + self._child_channels:
            ch.close()
        self._closed = True

    def shutdown(self) -> None:
        """Idempotent teardown alias (the context-manager exit path)."""
        if self._closed:
            return
        self.terminate()

    def __enter__(self) -> "ProcessGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def poll_failures(self) -> None:
        """Raise if any rank already died badly (non-blocking health check)."""
        failures: Dict[int, str] = {}
        for rank, p in enumerate(self.processes):
            if self._started and not p.is_alive() and (p.exitcode or 0) != 0:
                msg = f"exited with code {p.exitcode}"
                ch = self.channels[rank]
                try:
                    # a dead worker's pipe stays poll()-readable at EOF, so
                    # the drain must both stop on the error frame and treat
                    # the eventual EOF as end-of-diagnostics, not an error
                    while ch.poll(0.0):
                        frame = ch.recv(timeout=1.0)
                        if frame.tag == "error":
                            msg = frame.meta.get("error", msg)
                            break
                except TransportError:
                    pass
                failures[rank] = msg
        if failures:
            self.terminate()
            raise WorkerFailure(failures)

    # ----------------------------------------------------------------- join
    def join(self, timeout: Optional[float] = None) -> List[Frame]:
        """Wait for every rank's ``result`` frame; raise on any failure.

        Returns the result frames in rank order.  On the first error frame
        or abnormal exit the remaining ranks are terminated — a crash
        surfaces as one raised :class:`WorkerFailure`, never a hang.
        """
        deadline = time.monotonic() + (timeout if timeout is not None else self.timeout)
        results: Dict[int, Frame] = {}
        failures: Dict[int, str] = {}
        pending = set(range(self.world))
        try:
            while pending and not failures:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    for rank in sorted(pending):
                        failures[rank] = f"no result within {self.timeout:.0f}s"
                    break
                conn_map = {
                    self.channels[r].endpoint.conn: r for r in pending
                }
                sentinel_map = {self.processes[r].sentinel: r for r in pending}
                ready = mp.connection.wait(
                    list(conn_map) + list(sentinel_map), timeout=min(budget, 1.0)
                )
                for obj in ready:
                    if obj in conn_map:
                        rank = conn_map[obj]
                        try:
                            frame = self.channels[rank].recv(timeout=1.0)
                        except TransportError as exc:
                            failures.setdefault(rank, f"control channel died: {exc}")
                            continue
                        if frame.tag == "result":
                            results[rank] = frame
                            pending.discard(rank)
                        elif frame.tag == "error":
                            failures[rank] = frame.meta.get("error", "unknown error")
                        # other tags (logs/progress) are ignored here
                    else:
                        rank = sentinel_map[obj]
                        p = self.processes[rank]
                        p.join(timeout=0.1)
                        # drain any frame that raced the exit
                        ch = self.channels[rank]
                        while ch.poll(0.0) and rank in pending:
                            try:
                                frame = ch.recv(timeout=1.0)
                            except TransportError:
                                break
                            if frame.tag == "result":
                                results[rank] = frame
                                pending.discard(rank)
                            elif frame.tag == "error":
                                failures[rank] = frame.meta.get(
                                    "error", "unknown error"
                                )
                        if rank in pending and rank not in failures:
                            failures[rank] = (
                                f"exited with code {p.exitcode} before reporting"
                            )
        finally:
            if failures or pending:
                self.terminate()
        if failures:
            raise WorkerFailure(failures)
        for p in self.processes:
            p.join(timeout=5.0)
        for ch in self.channels:
            ch.close()
        return [results[r] for r in range(self.world)]


# -------------------------------------------------------------- train fit
def snapshot_trainer_state(trainer) -> dict:
    """The resumable half of a trainer: weights, optimizer, cursors.

    This is what makes a process fit *continue* the session exactly like a
    local fit would — a freshly-built worker loads this plus the shared
    memory segments and is indistinguishable from the parent's trainer.
    Node memory/mailbox contents travel separately (they are copied into
    the shared segments, not serialized twice).
    """
    m_arrs, v_arrs, opt_step = trainer.optimizer.state_arrays()
    arrays = {
        "model": np.frombuffer(trainer.model.to_bytes(), dtype=np.uint8),
        "decoder": np.frombuffer(trainer.decoder.to_bytes(), dtype=np.uint8),
    }
    for idx, (mi, vi) in enumerate(zip(m_arrs, v_arrs)):
        arrays[f"opt/m{idx}"] = mi.copy()
        arrays[f"opt/v{idx}"] = vi.copy()
    meta = {
        "opt_step": opt_step,
        "iteration": trainer._iteration,
        "sweep_negative_offset": trainer._sweep_negative_offset,
        "groups": [
            {
                "index": g.index,
                "position": g.position,
                "prev_batch": g.prev_batch,
                "sweeps_completed": g.sweeps_completed,
            }
            for g in trainer.groups
        ],
    }
    return {"meta": meta, "arrays": arrays}


def load_trainer_state(trainer, meta: dict, arrays: Dict[str, np.ndarray]) -> None:
    """Inverse of :func:`snapshot_trainer_state` (weights/optimizer/cursors)."""
    trainer.model.from_bytes(arrays["model"].tobytes())
    trainer.decoder.from_bytes(arrays["decoder"].tobytes())
    m_arrs, v_arrs, _ = trainer.optimizer.state_arrays()
    for idx, (mi, vi) in enumerate(zip(m_arrs, v_arrs)):
        mi[...] = arrays[f"opt/m{idx}"]
        vi[...] = arrays[f"opt/v{idx}"]
    trainer.optimizer._step = int(meta["opt_step"])
    for g, cursor in zip(trainer.groups, meta["groups"]):
        g.position = int(cursor["position"])
        g.prev_batch = int(cursor["prev_batch"])
        g.sweeps_completed = int(cursor["sweeps_completed"])
    trainer._iteration = int(meta["iteration"])
    trainer._sweep_negative_offset = int(meta["sweep_negative_offset"])


def encode_commit(trainer, book: dict) -> bytes:
    """Serialize the whole resumable run (trainer snapshot + loop
    bookkeeping) into one commit-slab payload."""
    snap = snapshot_trainer_state(trainer)
    return encode_frame(
        Frame("commit", meta={**snap["meta"], "book": book}, arrays=snap["arrays"])
    )


def decode_commit(payload: bytes) -> Tuple[dict, Dict[str, np.ndarray], dict]:
    """Inverse of :func:`encode_commit` → ``(trainer_meta, arrays, book)``."""
    frame = decode_frame(payload)
    meta = dict(frame.meta)
    book = meta.pop("book")
    return meta, frame.arrays, book


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a process fit responds to rank failures.

    ``max_restarts``
        Recovery attempts before the run gives up and raises
        :class:`WorkerFailure` (0 = fail on the first fault, the pre-
        elastic behavior).
    ``collective_timeout``
        Per-operation deadline on the worker collectives; it bounds both
        how long a survivor waits on a dead peer before parking and the
        longest legitimate wait (rank 0's evaluation at a barrier), so it
        must exceed one evaluation sweep.
    ``commit_every``
        Commit cadence in block boundaries (1 = every block): smaller
        loses less work per rollback, larger pays fewer commit barriers.
    ``park_grace``
        How long the supervisor waits for survivors to park (and for a
        suspected-wedged rank to show life) before killing stragglers;
        default ``collective_timeout + 15``.
    """

    max_restarts: int = 2
    collective_timeout: float = 120.0
    commit_every: int = 1
    park_grace: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.collective_timeout <= 0:
            raise ValueError("collective_timeout must be positive")
        if self.commit_every < 1:
            raise ValueError("commit_every must be >= 1")

    @property
    def grace(self) -> float:
        return (
            self.park_grace
            if self.park_grace is not None
            else self.collective_timeout + 15.0
        )


def _make_group_comms(plan, world_timeout: float) -> List[Communicator]:
    """One group communicator per rank (the i shards of each memory group)."""
    comms: List[Communicator] = []
    for _ in range(plan.k):
        if plan.i == 1:
            comms.append(Communicator(0, 1))
        else:
            comms.extend(make_local_communicators(plan.i, default_timeout=world_timeout))
    return comms


def prepare_recovery_state(
    config, trainer, *, book: Optional[dict] = None, name_prefix: str = "repro-rt"
) -> Tuple[CommitSlab, List[List[SharedGroupState]], dict]:
    """Allocate the commit slab + per-group shadow slot pairs and seal the
    initial commit (slot 0 = the parent trainer's current state).

    Returns ``(slab, shadow_pairs, shadow_specs)`` where ``shadow_pairs[g]``
    is group ``g``'s ``[slot0, slot1]`` states and ``shadow_specs`` is the
    wire description workers attach from.  The caller owns everything and
    must close + unlink it (``run_process_fit`` does).
    """
    graph = trainer.graph
    plan = config.parallel
    slot_states: List[List[SharedGroupState]] = []
    slab: Optional[CommitSlab] = None
    try:
        for slot in range(2):
            slot_states.append(
                create_group_states(
                    plan.k,
                    num_nodes=graph.num_nodes,
                    memory_dim=config.model.memory_dim,
                    edge_dim=graph.edge_dim,
                    comb=config.train.comb,
                    name_prefix=f"{name_prefix}-shd{slot}",
                )
            )
        # slot 0 backs the initial commit: it must hold the starting memory
        for st, g in zip(slot_states[0], trainer.groups):
            st.memory.copy_from(g.memory)
            st.mailbox.copy_from(g.mailbox)
        from .worker import initial_book

        payload = encode_commit(trainer, book if book is not None else initial_book())
        token = np.random.SeedSequence().entropy % (1 << 32)
        slab = CommitSlab(
            f"{name_prefix}-{token:08x}-commit",
            capacity=len(payload) + max(1 << 20, len(payload)),
            create=True,
        )
        slab.write(0, payload)
        slab.seal(0, trainer._iteration)
    except BaseException:
        for states in slot_states:
            destroy_states(states)
        if slab is not None:
            slab.close()
            slab.unlink()
        raise
    shadow_pairs = [
        [slot_states[0][g], slot_states[1][g]] for g in range(plan.k)
    ]
    shadow_specs = [
        [pair[0].spec.to_dict(), pair[1].spec.to_dict()] for pair in shadow_pairs
    ]
    return slab, shadow_pairs, shadow_specs


class SlabCheckpointer:
    """Parent-side periodic checkpoint export from the sealed commit slab.

    The local backend checkpoints from inside the training loop
    (``Session._checkpoint_callback``); the process and fabric backends
    cannot — the trainer lives in the workers.  But every ``commit_every``
    blocks the fleet seals a complete resumable state into the commit slab
    + shadow segments, and the parent can read both.  This exporter turns
    the latest sealed commit into exactly the artifacts the local backend
    writes — ``config.json`` once, then ``checkpoint.npz`` + ``resume.json``
    via write-to-temp + rename, checkpoint first — so ``Session.resume``
    is backend-agnostic and a resumed process/fabric fit equals an
    uninterrupted one bitwise.

    Export is torn-read safe without stalling the fleet: the sealed slot is
    copied optimistically, then the slab header is re-read — commits only
    move forward, so *any* concurrent seal changes the header and the copy
    is discarded until the next supervise-loop tick.
    """

    def __init__(
        self,
        *,
        directory,
        config,
        trainer,
        slab: CommitSlab,
        shadow_pairs: List[List[SharedGroupState]],
        target_iteration: int,
        start_iteration: int,
        every: int,
    ) -> None:
        self.directory = Path(directory)
        self.slab = slab
        self.shadow_pairs = shadow_pairs
        self.target_iteration = int(target_iteration)
        self.start_iteration = int(start_iteration)
        self.every = max(1, int(every))
        # one block advances the global iteration by j (the j sub-steps of
        # a block are iterations); cadence counts block boundaries, like
        # the local backend's on_block_boundary callback
        self.iterations_per_block = max(1, int(config.parallel.j))
        self.marks = 0                 # cadence marks already exported
        self.last_exported = int(start_iteration)
        self.directory.mkdir(parents=True, exist_ok=True)
        (self.directory / "config.json").write_text(config.to_json() + "\n")
        # static metadata the slab payload does not carry (the checkpoint
        # layout is train.checkpoint's format 2, byte-compatible)
        self.base_meta = {
            "format_version": 2,
            "config": config.parallel.label(),
            "machines": config.parallel.machines,
            "dataset": trainer.dataset.name,
            "task": trainer.dataset.task,
            "rank_rng": trainer.rank_rng.bit_generator.state,
        }

    def tick(self) -> None:
        """Export the latest sealed commit if a cadence mark is due."""
        slot, sealed = self.slab.header
        if sealed < 0 or int(sealed) <= self.last_exported:
            return
        blocks = (int(sealed) - self.start_iteration) // self.iterations_per_block
        due = blocks // self.every
        if due <= self.marks:
            return
        meta, arrays, book = decode_commit(self.slab.read())
        groups: Dict[str, np.ndarray] = {}
        for g, pair in enumerate(self.shadow_pairs):
            st = pair[slot]
            groups[f"group{g}/memory"] = np.array(st.memory.memory, copy=True)
            groups[f"group{g}/last_update"] = np.array(
                st.memory.last_update, copy=True
            )
            groups[f"group{g}/mail"] = np.array(st.mailbox.mail, copy=True)
            groups[f"group{g}/mail_time"] = np.array(st.mailbox.mail_time, copy=True)
            groups[f"group{g}/has_mail"] = np.array(st.mailbox.has_mail, copy=True)
        if tuple(self.slab.header) != (slot, sealed) or int(
            meta["iteration"]
        ) != int(sealed):
            return  # a commit raced the copy; pick it up next tick
        ckpt: Dict[str, np.ndarray] = {
            "meta/json": np.frombuffer(
                json.dumps(
                    {
                        **self.base_meta,
                        "iteration": int(meta["iteration"]),
                        "sweep_negative_offset": int(
                            meta["sweep_negative_offset"]
                        ),
                    }
                ).encode("utf-8"),
                dtype=np.uint8,
            ),
            "model/blob": arrays["model"],
            "decoder/blob": arrays["decoder"],
            "opt/step": np.array([int(meta["opt_step"])], dtype=np.int64),
        }
        idx = 0
        while f"opt/m{idx}" in arrays:
            ckpt[f"opt/m{idx}"] = arrays[f"opt/m{idx}"]
            ckpt[f"opt/v{idx}"] = arrays[f"opt/v{idx}"]
            idx += 1
        for cursor in meta["groups"]:
            ckpt[f"group{cursor['index']}/cursor"] = np.array(
                [
                    cursor["position"],
                    cursor["prev_batch"],
                    cursor["sweeps_completed"],
                ],
                dtype=np.int64,
            )
        ckpt.update(groups)
        tmp_ckpt = self.directory / "checkpoint.tmp.npz"
        np.savez_compressed(tmp_ckpt, **ckpt)
        tmp_ckpt.replace(self.directory / "checkpoint.npz")
        state = {
            "target_iteration": self.target_iteration,
            "history": book["history"],
            "recent": book["recent"],
            "last_eval_sweeps": book["last_eval_sweeps"],
            "iteration": int(meta["iteration"]),
        }
        tmp_json = self.directory / "resume.json.tmp"
        tmp_json.write_text(json.dumps(state, indent=2, sort_keys=True) + "\n")
        tmp_json.replace(self.directory / "resume.json")
        self.marks = due
        self.last_exported = int(sealed)


class _ElasticSupervisor:
    """Parent-side fleet supervisor with rollback recovery.

    Owns the worker processes and their control channels directly (rather
    than through :class:`ProcessGroup`) because recovery respawns
    *individual* ranks mid-run with fresh control pipes and a later
    communicator generation.
    """

    def __init__(
        self,
        *,
        world: int,
        make_kwargs: Callable[[int, int], dict],
        slab: CommitSlab,
        shadow_pairs: List[List[SharedGroupState]],
        live_states: List[SharedGroupState],
        world_gens: List[List[Communicator]],
        group_gens: List[List[Communicator]],
        policy: RecoveryPolicy,
        timeout: float,
        name: str = "repro-rt",
        tracer: Optional[Tracer] = None,
        reduce_gens: Optional[List[List]] = None,
        target_iteration: Optional[int] = None,
        checkpointer: Optional["SlabCheckpointer"] = None,
    ) -> None:
        self.world = world
        self.make_kwargs = make_kwargs
        self.slab = slab
        self.shadow_pairs = shadow_pairs
        self.live_states = live_states
        self.world_gens = world_gens
        self.group_gens = group_gens
        self.reduce_gens = reduce_gens or []
        self.policy = policy
        self.timeout = timeout
        self.name = name
        self.tracer = tracer              # supervisor lane of the run trace
        self.target_iteration = target_iteration
        self.checkpointer = checkpointer
        self.ctx = mp.get_context("spawn")
        self.procs: Dict[int, mp.Process] = {}
        self.chans: Dict[int, Channel] = {}
        self.status: Dict[int, str] = {}      # running | parked | dead | done
        self.diags: Dict[int, str] = {}
        self.park_iters: Dict[int, int] = {}  # iteration each rank parked at
        self.results: Dict[int, Frame] = {}
        self.generation = 0
        self.restarts = 0
        # restart accounting is per *episode* — every recovery that rolls
        # back to the same sealed commit (a second rank dying while the
        # first rollback re-executes, a fault inside _recover itself, a
        # finalization-window replay) is one failure event, not several
        self._episode_seal: Optional[Tuple[int, int]] = None
        self._episode_retries = 0

    # ------------------------------------------------------------ lifecycle
    def _spawn(self, rank: int, respawn: bool, finalize: bool = False) -> None:
        from .worker import train_worker

        old = self.chans.pop(rank, None)
        if old is not None:
            old.close()
        parent_ch, child_ch = pipe_channel_pair(self.timeout)
        kwargs = self.make_kwargs(rank, self.generation)
        kwargs["clear_failpoints"] = respawn
        kwargs["finalize_only"] = finalize
        proc = self.ctx.Process(
            target=_worker_shell,
            args=(train_worker, rank, child_ch, kwargs),
            name=f"{self.name}-{rank}g{self.generation}",
            daemon=True,
        )
        proc.start()
        child_ch.close()
        self.procs[rank] = proc
        self.chans[rank] = parent_ch
        self.status[rank] = "running"

    def _kill(self, rank: int) -> None:
        p = self.procs.get(rank)
        if p is not None and p.is_alive():
            p.kill()
            p.join(timeout=5.0)

    def _cleanup(self) -> None:
        for rank in range(self.world):
            self._kill(rank)
        for p in self.procs.values():
            p.join(timeout=5.0)
        for ch in self.chans.values():
            ch.close()
        for gen in range(self.generation, len(self.world_gens)):
            for comm in self._gen_comms(gen):
                comm.close()

    def _gen_comms(self, gen: int) -> List:
        extra = self.reduce_gens[gen] if gen < len(self.reduce_gens) else []
        return self.world_gens[gen] + self.group_gens[gen] + list(extra)

    def _fail(self, default: str) -> None:
        failures = dict(self.diags)
        for rank in range(self.world):
            if self.status.get(rank) != "done":
                failures.setdefault(rank, default)
        self._cleanup()
        raise WorkerFailure(failures or {0: default})

    # -------------------------------------------------------------- running
    def run(self) -> List[Frame]:
        """Supervise until every rank reports a result; recover (within the
        restart budget) from crashes, wedges and dropped pipes."""
        for rank in range(self.world):
            self._spawn(rank, respawn=False)
        deadline = time.monotonic() + self.timeout
        park_deadline: Optional[float] = None
        reaped: set = set()

        while any(st != "done" for st in self.status.values()):
            if time.monotonic() > deadline:
                self._fail(f"no result within {self.timeout:.0f}s")
            waitables = {}
            for rank in range(self.world):
                st = self.status[rank]
                if st in ("running", "parked"):
                    waitables[self.chans[rank].endpoint.conn] = ("chan", rank)
                # a dead process's sentinel stays readable until reaped —
                # that readiness IS the death notification, so keep
                # watching it even when is_alive() already returns False
                if st != "done" and rank not in reaped:
                    waitables[self.procs[rank].sentinel] = ("proc", rank)
            ready = mp.connection.wait(list(waitables), timeout=0.5)
            for obj in ready:
                kind, rank = waitables[obj]
                if kind == "chan":
                    self._drain(rank)
                else:
                    self.procs[rank].join(timeout=0.1)
                    reaped.add(rank)
                    self._drain(rank)
                    if self.status[rank] not in ("done",):
                        code = self.procs[rank].exitcode
                        self.status[rank] = "dead"
                        self.diags.setdefault(rank, f"exited with code {code}")

            if self.checkpointer is not None:
                self.checkpointer.tick()

            troubled = [
                r for r, st in self.status.items() if st in ("parked", "dead")
            ]
            if troubled:
                if park_deadline is None:
                    park_deadline = time.monotonic() + self.policy.grace
                undecided = [
                    r for r, st in self.status.items() if st == "running"
                ]
                if not undecided:
                    self._recover_guarded()
                    park_deadline = None
                    reaped.clear()  # respawned ranks have fresh processes
                elif time.monotonic() > park_deadline:
                    # stragglers are wedged (alive, not parked, not dead):
                    # kill them so recovery can proceed
                    for rank in undecided:
                        self.diags.setdefault(
                            rank,
                            f"unresponsive for {self.policy.grace:.0f}s "
                            f"(wedged); killed",
                        )
                        self._kill(rank)
                        self.status[rank] = "dead"
                    self._recover_guarded()
                    park_deadline = None
                    reaped.clear()

        for p in self.procs.values():
            p.join(timeout=5.0)
        for ch in self.chans.values():
            ch.close()
        for gen in range(self.generation, len(self.world_gens)):
            for comm in self._gen_comms(gen):
                comm.close()
        return [self.results[r] for r in range(self.world)]

    def _drain(self, rank: int) -> None:
        """Dispatch whatever frames ``rank`` has sent (non-blocking)."""
        ch = self.chans[rank]
        while ch.poll(0.0) and self.status[rank] != "done":
            try:
                frame = ch.recv(timeout=1.0)
            except TransportError:
                return  # EOF on a dead rank's pipe; the sentinel decides
            if frame.tag == "result":
                self.results[rank] = frame
                self.status[rank] = "done"
            elif frame.tag == "parked":
                self.status[rank] = "parked"
                self.diags.setdefault(
                    rank, f"parked: {frame.meta.get('error', 'peer failure')}"
                )
                if "iteration" in frame.meta:
                    self.park_iters[rank] = int(frame.meta["iteration"])
            elif frame.tag == "error":
                self.diags[rank] = frame.meta.get("error", "unknown error")

    def _recover_guarded(self) -> None:
        """Run one recovery attempt, folding *its own* failures back into
        the supervise loop instead of hanging or double-restoring.

        ``_recover`` is re-entrant: every mutation it performs (restoring
        live segments from the sealed slot, resuming parked ranks,
        respawning dead ones) is idempotent against a retry from the same
        sealed commit, and the episode accounting makes the retry free.  So
        a fault *inside* recovery — the ``supervisor.recover`` failpoint, a
        rank dying mid-rollback, an I/O error wiring a generation — leaves
        a state the next loop pass recognizes as still-troubled and folds
        into the same recovery episode.
        """
        try:
            self._recover()
        except WorkerFailure:
            raise
        except BaseException as exc:  # noqa: BLE001 - fold into the episode
            if self.tracer is not None:
                self.tracer.instant(
                    "recover-fault", generation=self.generation, error=repr(exc)
                )
                self.tracer.flush()
            get_registry().counter("recovery/recover_faults").add()
            # ranks the aborted attempt already resumed/respawned will park
            # again on their collective timeout; the ones it never reached
            # are still parked/dead — either way the loop re-enters recovery

    def _recover(self) -> None:
        """Roll the fleet back to the last sealed commit and resume it.

        The whole recovery is one ``rollback`` span on the supervisor lane
        (with per-rank ``respawn`` sub-spans) and a set of ``recovery/*``
        registry metrics, so a chaos run's recovery is auditable from the
        trace/metrics alone.

        If the sealed commit already covers the whole iteration plan the
        fleet was in its *finalization window* (trailing eval / result
        report after the end barrier).  That window holds no collectives a
        finished rank would be missed from, so "done" ranks stay done and
        everyone else replays finalization from the sealed final commit —
        a fault after the end barrier recovers bitwise instead of failing.
        """
        # the supervisor is not exempt from chaos: this site lets tests
        # land a fault inside recovery itself (the re-entrancy drill)
        failpoints.fire("supervisor.recover")
        slot, sealed_iteration = self.slab.header
        seal = (int(slot), int(sealed_iteration))
        if seal == self._episode_seal:
            # same rollback target as the previous recovery: a concurrent
            # fault within one episode (rollback re-execution died, or the
            # recovery itself faulted) — no fresh progress was lost, so it
            # consumes a bounded retry, not a restart
            self._episode_retries += 1
            if self._episode_retries > 8:
                self._fail("repeated faults within one recovery episode")
        else:
            self._episode_seal = seal
            self._episode_retries = 0
            self.restarts += 1
        if self.restarts > self.policy.max_restarts:
            self._fail("failed and restart budget exhausted")
        finalized = (
            self.target_iteration is not None
            and sealed_iteration >= self.target_iteration
        )
        if finalized:
            self._recover_finalize(slot, sealed_iteration)
            return
        if any(st == "done" for st in self.status.values()):
            # a rank can only finish after the final commit sealed, which
            # the branch above handles; reaching here means the slab went
            # backwards — give up loudly rather than diverge
            self._fail("fleet failed after some ranks completed")
        if self.generation + 1 >= len(self.world_gens):
            self._fail("failed and communicator generations exhausted")
        prev = self.generation
        self.generation += 1
        # rollback depth: iterations of re-execution the fleet pays — how
        # far past the sealed commit the furthest surviving rank had run
        depth = max(
            (it - sealed_iteration for it in self.park_iters.values()),
            default=0,
        )
        depth = max(depth, 0)
        dead = [r for r, st in self.status.items() if st == "dead"]
        registry = get_registry()
        registry.counter("recovery/restarts").add()
        registry.gauge("recovery/rollback_depth").set(float(depth))
        registry.gauge("recovery/generation").set(float(self.generation))
        rollback_span = (
            self.tracer.span(
                "rollback",
                generation=self.generation,
                restart=self.restarts,
                slot=int(slot),
                sealed_iteration=int(sealed_iteration),
                depth=int(depth),
                dead_ranks=dead,
            )
            if self.tracer is not None
            else None
        )
        if rollback_span is not None:
            rollback_span.__enter__()
        try:
            for live, pair in zip(self.live_states, self.shadow_pairs):
                live.memory.copy_from(pair[slot].memory)
                live.mailbox.copy_from(pair[slot].mailbox)
            for comm in self._gen_comms(prev):
                comm.close()
            for rank in range(self.world):
                st = self.status[rank]
                if st == "dead":
                    self._respawn_traced(rank)
                elif st == "parked":
                    try:
                        self.chans[rank].send(
                            "resume", meta={"generation": self.generation}
                        )
                        self.status[rank] = "running"
                    except TransportError:
                        # parked worker died in the meantime: respawn it too
                        self.diags.setdefault(rank, "died while parked")
                        self._respawn_traced(rank)
        finally:
            if rollback_span is not None:
                rollback_span.__exit__(None, None, None)
            if self.tracer is not None:
                self.tracer.flush()
        self.park_iters.clear()

    def _recover_finalize(self, slot: int, sealed_iteration: int) -> None:
        """Recover a fault that landed in the finalization window.

        The final commit (sealed just before the end barrier) holds the
        complete end-of-run state, so nothing needs re-execution: restore
        the live segments, and have every non-done rank replay finalization
        straight from the sealed commit — no collectives, no generation
        bump.  Ranks that already reported stay "done"; a dead rank 0 is
        respawned in finalize-only mode and reproduces its result bitwise
        (minus the bench gather, which needs the whole fleet alive).
        """
        registry = get_registry()
        registry.counter("recovery/restarts").add()
        registry.counter("recovery/finalize_recoveries").add()
        registry.gauge("recovery/rollback_depth").set(0.0)
        span_ctx = (
            self.tracer.span(
                "rollback",
                generation=self.generation,
                restart=self.restarts,
                slot=int(slot),
                sealed_iteration=int(sealed_iteration),
                finalize=True,
                dead_ranks=[r for r, st in self.status.items() if st == "dead"],
            )
            if self.tracer is not None
            else None
        )
        if span_ctx is not None:
            span_ctx.__enter__()
        try:
            for live, pair in zip(self.live_states, self.shadow_pairs):
                live.memory.copy_from(pair[slot].memory)
                live.mailbox.copy_from(pair[slot].mailbox)
            for rank in range(self.world):
                st = self.status[rank]
                if st == "dead":
                    self._respawn_traced(rank, finalize=True)
                elif st == "parked":
                    try:
                        self.chans[rank].send(
                            "resume",
                            meta={"generation": self.generation, "finalize": True},
                        )
                        self.status[rank] = "running"
                    except TransportError:
                        self.diags.setdefault(rank, "died while parked")
                        self._respawn_traced(rank, finalize=True)
        finally:
            if span_ctx is not None:
                span_ctx.__exit__(None, None, None)
            if self.tracer is not None:
                self.tracer.flush()
        self.park_iters.clear()

    def _respawn_traced(self, rank: int, finalize: bool = False) -> None:
        """Respawn one dead rank, recording its spawn latency as a span and
        a ``recovery/respawn_latency_s`` histogram sample."""
        registry = get_registry()
        t0 = time.perf_counter()
        if self.tracer is not None:
            with self.tracer.span("respawn", rank=rank, generation=self.generation):
                self._spawn(rank, respawn=True, finalize=finalize)
        else:
            self._spawn(rank, respawn=True, finalize=finalize)
        registry.counter("recovery/respawns").add()
        registry.histogram("recovery/respawn_latency_s").record(
            time.perf_counter() - t0
        )


def run_process_fit(
    config,
    trainer,
    *,
    epochs: Optional[int] = None,
    max_iterations: Optional[int] = None,
    eval_every_sweeps: int = 1,
    verbose: bool = False,
    timeout: float = DEFAULT_TIMEOUT,
    recovery: Optional[RecoveryPolicy] = None,
    run_state: Optional[dict] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 1,
) -> Tuple[dict, Dict[str, np.ndarray], List[SharedGroupState]]:
    """Execute ``config`` across ``i×k`` worker processes, **continuing**
    from ``trainer``'s current state (weights, optimizer moments, node
    memory, cursors) — the same semantics as calling ``trainer.train``
    locally.  The shared segments start as copies of the trainer's group
    states; the resumable state travels through the sealed commit slab.

    ``recovery`` selects the :class:`RecoveryPolicy` (default: elastic
    restart with 2 attempts).  ``run_state`` is a resumed run's bookkeeping
    (``Session.resume``): ``{"target_iteration", "history", "recent",
    "last_eval_sweeps"}`` — when given, the fit continues *that* run to its
    original target instead of starting a fresh iteration plan.
    ``checkpoint_dir`` makes the supervisor export every ``checkpoint_every``
    sealed block boundaries to a :class:`SlabCheckpointer` directory that
    ``Session.resume`` continues from, exactly like a local-backend fit.

    Returns ``(meta, arrays, group_states)`` from rank 0: the training
    result + cursor metadata, the trained weight/optimizer arrays, and the
    (closed-pending) shared group states still holding the final node
    memory of every group.  The caller copies what it needs and must call
    ``close()``/``unlink()`` on each group state (``apply_process_result``
    does all of this for a Session trainer).
    """
    from .worker import initial_book

    policy = recovery if recovery is not None else RecoveryPolicy()
    plan = config.parallel
    world = plan.i * plan.k
    graph = trainer.graph
    comb = config.train.comb

    # ---- iteration plan (the logical trainer's fairness arithmetic): one
    # absolute target, identical for fresh runs, continues and rollbacks
    if run_state is not None:
        target_iteration = int(run_state["target_iteration"])
        book = {
            "history": list(run_state["history"]),
            "recent": list(run_state["recent"]),
            "last_eval_sweeps": int(run_state["last_eval_sweeps"]),
        }
    else:
        epochs_eq = epochs if epochs is not None else config.train.epochs
        total_batch_visits = epochs_eq * trainer.num_batches
        visits_per_iteration = plan.j * plan.k
        iterations = max(1, total_batch_visits // visits_per_iteration)
        if max_iterations is not None:
            iterations = min(iterations, int(max_iterations))
        target_iteration = trainer._iteration + iterations
        book = initial_book()

    # telemetry: resolve the trace directory once (env beats config) and
    # ship it to every rank; the supervisor gets its own lane so recovery
    # spans interleave with worker spans on the merged timeline
    trace_dir = resolve_trace_dir(config)
    supervisor_tracer: Optional[Tracer] = None
    if trace_dir is not None:
        Path(trace_dir).mkdir(parents=True, exist_ok=True)
        supervisor_tracer = Tracer(
            rank=world,
            lane="supervisor",
            path=Path(trace_dir) / "trace-supervisor.jsonl",
        )
        # a lifecycle mark so the supervisor lane exists on the merged
        # timeline even for runs that never needed a recovery
        supervisor_tracer.instant("launch", world=world)

    group_states = create_group_states(
        plan.k,
        num_nodes=graph.num_nodes,
        memory_dim=config.model.memory_dim,
        edge_dim=graph.edge_dim,
        comb=comb,
    )
    slab: Optional[CommitSlab] = None
    shadow_pairs: List[List[SharedGroupState]] = []
    world_gens: List[List[Communicator]] = []
    group_gens: List[List[Communicator]] = []
    reduce_gens: List[List] = []
    supervisor: Optional[_ElasticSupervisor] = None
    topology = getattr(config.train, "topology", "star")
    try:
        # continue from the parent's node memory, not from zero state
        for st, g in zip(group_states, trainer.groups):
            st.memory.copy_from(g.memory)
            st.mailbox.copy_from(g.mailbox)
        slab, shadow_pairs, shadow_specs = prepare_recovery_state(
            config, trainer, book=book
        )
        shared_specs = [st.spec.to_dict() for st in group_states]

        # one generation per counted restart, plus headroom for the same-
        # episode retries that do not consume the budget (a fault during
        # rollback re-execution still needs a fresh communicator wiring);
        # the supervisor fails cleanly if even the headroom runs out
        generations = policy.max_restarts + 3
        for _ in range(generations):
            world_gens.append(
                make_local_communicators(
                    world, default_timeout=policy.collective_timeout
                )
            )
            group_gens.append(_make_group_comms(plan, policy.collective_timeout))
            if topology != "star":
                # a dedicated ring/tree communicator generation carries the
                # gradient allreduce; barriers and control stay on the star
                # (all three reduce in rank order, so results are bitwise
                # identical — the topology only changes who moves the bytes)
                reduce_gens.append(
                    make_topology_communicators(
                        topology, world, policy.collective_timeout
                    )
                )

        train_meta = {
            "target_iteration": target_iteration,
            "eval_every_sweeps": eval_every_sweeps,
            "verbose": verbose,
            "commit_every": policy.commit_every,
        }
        if trace_dir is not None:
            train_meta["trace_dir"] = str(trace_dir)
        config_dict = config.to_dict()
        commit_spec = slab.to_dict()

        def make_kwargs(rank: int, generation: int) -> dict:
            return {
                "config_dict": config_dict,
                "shared_specs": shared_specs,
                "commit_spec": commit_spec,
                "shadow_specs": shadow_specs,
                # only the generations still ahead: the parent closed its
                # duplicates of spent generations at each recovery
                "world_comms": {
                    g: world_gens[g][rank] for g in range(generation, generations)
                },
                "group_comms": {
                    g: group_gens[g][rank] for g in range(generation, generations)
                },
                "reduce_comms": (
                    {
                        g: reduce_gens[g][rank]
                        for g in range(generation, generations)
                    }
                    if reduce_gens
                    else None
                ),
                "generation": generation,
                "train_meta": train_meta,
            }

        checkpointer: Optional[SlabCheckpointer] = None
        if checkpoint_dir is not None:
            checkpointer = SlabCheckpointer(
                directory=checkpoint_dir,
                config=config,
                trainer=trainer,
                slab=slab,
                shadow_pairs=shadow_pairs,
                target_iteration=target_iteration,
                start_iteration=trainer._iteration,
                every=checkpoint_every,
            )

        supervisor = _ElasticSupervisor(
            world=world,
            make_kwargs=make_kwargs,
            slab=slab,
            shadow_pairs=shadow_pairs,
            live_states=group_states,
            world_gens=world_gens,
            group_gens=group_gens,
            policy=policy,
            timeout=timeout,
            tracer=supervisor_tracer,
            reduce_gens=reduce_gens,
            target_iteration=target_iteration,
            checkpointer=checkpointer,
        )
        results = supervisor.run()
    except BaseException:
        # _fail() already cleaned up before raising WorkerFailure; for any
        # other escape (KeyboardInterrupt mid-loop, an OSError, a failure
        # while wiring the generations) the fleet must still be terminated
        # and every pre-wired pipe closed — _cleanup is idempotent
        if supervisor is not None:
            supervisor._cleanup()
        else:
            for gen_comms in world_gens + group_gens + reduce_gens:
                for comm in gen_comms:
                    comm.close()
        destroy_states(group_states)
        raise
    finally:
        for pair in shadow_pairs:
            destroy_states(pair)
        if slab is not None:
            slab.close()
            slab.unlink()
        if trace_dir is not None:
            # always leave a merged timeline — a failed chaos run's partial
            # traces are exactly when you want one.  Best effort: telemetry
            # must never turn a completed fit into a failure.
            try:
                if supervisor_tracer is not None:
                    supervisor_tracer.instant("join")
                    supervisor_tracer.flush()
                merge_trace_dir(trace_dir)
            except Exception:  # pragma: no cover - defensive
                pass
    root = results[0]
    return root.meta, root.arrays, group_states


def apply_process_result(
    trainer,
    meta: dict,
    arrays: Dict[str, np.ndarray],
    group_states: List[SharedGroupState],
):
    """Fold a process fit's final state into a local trainer, so the
    Session's ``evaluate`` / ``save`` / ``serve`` continue from exactly the
    state rank 0 finished with.  Consumes (and unlinks) the shared states.
    Returns the reconstructed :class:`~repro.train.TrainResult`.
    """
    from ..train.distributed import HistoryPoint, TrainResult

    # worker result meta matches the snapshot layout except the iteration
    # count, which it reports as "iterations_run"
    load_trainer_state(
        trainer, {**meta, "iteration": meta["iterations_run"]}, arrays
    )
    for g, st in zip(trainer.groups, group_states):
        g.memory.copy_from(st.memory)
        g.mailbox.copy_from(st.mailbox)
        st.close()
        st.unlink()

    result = TrainResult(config_label=meta["config_label"])
    result.history = [HistoryPoint(**point) for point in meta["history"]]
    result.best_val = float(meta["best_val"])
    result.iterations_to_best = int(meta["iterations_to_best"])
    result.iterations_run = int(meta["iterations_run"])
    result.test_metric = float(meta["test_metric"])
    return result
