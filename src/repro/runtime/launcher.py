"""Process-group lifecycle: spawn, monitor, join, propagate failures.

:class:`ProcessGroup` runs one module-level ``target`` per rank in real OS
processes (``spawn`` start method — children rebuild state from their
arguments rather than inheriting an address space, matching the runtime's
"reconstruct from config" contract).  Every rank gets a control
:class:`~repro.runtime.transport.Channel` to the parent; the worker shell
reports a ``result`` frame on success and an ``error`` frame (with the
remote traceback) on any exception.

The parent's :meth:`join` multiplexes over control channels *and* process
sentinels, so every failure mode becomes one raised
:class:`WorkerFailure` instead of a hang:

* a worker raises → its traceback travels back in the error frame;
* a worker dies without a frame (segfault, ``kill -9``) → the exit code is
  reported;
* a worker wedges → the deadline expires, the fleet is terminated, and the
  timeout is reported.

:func:`run_process_fit` is the training orchestration on top: allocate one
shared-memory segment per memory group, wire the collective communicators,
spawn ``i×k`` :func:`~repro.runtime.worker.train_worker` ranks, and fold
rank 0's result plus the final shared state back into a
:class:`~repro.train.distributed.TrainResult` + state dict the Session
applies to its local trainer.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .collectives import Communicator, make_local_communicators
from .sharedmem import SharedGroupState, create_group_states
from .transport import Channel, Frame, TransportError, pipe_channel_pair

DEFAULT_TIMEOUT = 600.0


class WorkerFailure(RuntimeError):
    """One or more ranks failed; carries per-rank diagnostics."""

    def __init__(self, failures: Dict[int, str]) -> None:
        self.failures = dict(failures)
        detail = "\n".join(
            f"--- rank {rank} ---\n{msg}" for rank, msg in sorted(failures.items())
        )
        super().__init__(f"{len(failures)} worker(s) failed:\n{detail}")


def _worker_shell(target: Callable, rank: int, channel: Channel, kwargs: dict) -> None:
    """Child-side wrapper: run the target, report result or failure."""
    try:
        meta, arrays = target(rank, channel, **kwargs)
        channel.send("result", meta=meta or {}, arrays=arrays or {})
    except BaseException:  # noqa: BLE001 - every failure must reach the parent
        try:
            channel.send("error", meta={"error": traceback.format_exc()})
        except Exception:
            pass  # parent still sees the nonzero exit code
        raise SystemExit(1)


class ProcessGroup:
    """A fleet of worker processes with failure propagation.

    Parameters
    ----------
    target:
        Module-level callable ``target(rank, channel, **kwargs) ->
        (meta, arrays)``; must be importable from the child (spawn).
    rank_kwargs:
        One kwargs dict per rank; its length defines the world size.
    timeout:
        Join deadline in seconds (also the default control-channel receive
        timeout).  Expiry terminates the fleet and raises.
    """

    def __init__(
        self,
        target: Callable,
        rank_kwargs: List[dict],
        *,
        name: str = "repro-rt",
        timeout: float = DEFAULT_TIMEOUT,
        start_method: str = "spawn",
    ) -> None:
        if not rank_kwargs:
            raise ValueError("need at least one rank")
        self.world = len(rank_kwargs)
        self.timeout = timeout
        ctx = mp.get_context(start_method)
        self.channels: List[Channel] = []
        self._child_channels: List[Channel] = []
        self.processes: List[mp.Process] = []
        for rank, kwargs in enumerate(rank_kwargs):
            parent_ch, child_ch = pipe_channel_pair(timeout)
            self.channels.append(parent_ch)
            self._child_channels.append(child_ch)
            self.processes.append(
                ctx.Process(
                    target=_worker_shell,
                    args=(target, rank, child_ch, kwargs),
                    name=f"{name}-{rank}",
                    daemon=True,
                )
            )
        self._started = False

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ProcessGroup":
        for p in self.processes:
            p.start()
        # start() pickled the child ends across (the resource sharer holds
        # its own dups until each child collects them), so the parent's
        # copies only waste fds and mask EOF on a dead worker's pipe
        for ch in self._child_channels:
            ch.close()
        self._child_channels.clear()
        self._started = True
        return self

    def terminate(self) -> None:
        for p in self.processes:
            if p.is_alive():
                p.terminate()
        for p in self.processes:
            p.join(timeout=5.0)
            if p.is_alive():  # pragma: no cover - last resort
                p.kill()
                p.join(timeout=5.0)
        for ch in self.channels:
            ch.close()

    def poll_failures(self) -> None:
        """Raise if any rank already died badly (non-blocking health check)."""
        failures: Dict[int, str] = {}
        for rank, p in enumerate(self.processes):
            if self._started and not p.is_alive() and (p.exitcode or 0) != 0:
                msg = f"exited with code {p.exitcode}"
                ch = self.channels[rank]
                try:
                    # a dead worker's pipe stays poll()-readable at EOF, so
                    # the drain must both stop on the error frame and treat
                    # the eventual EOF as end-of-diagnostics, not an error
                    while ch.poll(0.0):
                        frame = ch.recv(timeout=1.0)
                        if frame.tag == "error":
                            msg = frame.meta.get("error", msg)
                            break
                except TransportError:
                    pass
                failures[rank] = msg
        if failures:
            self.terminate()
            raise WorkerFailure(failures)

    # ----------------------------------------------------------------- join
    def join(self, timeout: Optional[float] = None) -> List[Frame]:
        """Wait for every rank's ``result`` frame; raise on any failure.

        Returns the result frames in rank order.  On the first error frame
        or abnormal exit the remaining ranks are terminated — a crash
        surfaces as one raised :class:`WorkerFailure`, never a hang.
        """
        deadline = time.monotonic() + (timeout if timeout is not None else self.timeout)
        results: Dict[int, Frame] = {}
        failures: Dict[int, str] = {}
        pending = set(range(self.world))
        try:
            while pending and not failures:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    for rank in sorted(pending):
                        failures[rank] = f"no result within {self.timeout:.0f}s"
                    break
                conn_map = {
                    self.channels[r].endpoint.conn: r for r in pending
                }
                sentinel_map = {self.processes[r].sentinel: r for r in pending}
                ready = mp.connection.wait(
                    list(conn_map) + list(sentinel_map), timeout=min(budget, 1.0)
                )
                for obj in ready:
                    if obj in conn_map:
                        rank = conn_map[obj]
                        try:
                            frame = self.channels[rank].recv(timeout=1.0)
                        except TransportError as exc:
                            failures.setdefault(rank, f"control channel died: {exc}")
                            continue
                        if frame.tag == "result":
                            results[rank] = frame
                            pending.discard(rank)
                        elif frame.tag == "error":
                            failures[rank] = frame.meta.get("error", "unknown error")
                        # other tags (logs/progress) are ignored here
                    else:
                        rank = sentinel_map[obj]
                        p = self.processes[rank]
                        p.join(timeout=0.1)
                        # drain any frame that raced the exit
                        ch = self.channels[rank]
                        while ch.poll(0.0) and rank in pending:
                            try:
                                frame = ch.recv(timeout=1.0)
                            except TransportError:
                                break
                            if frame.tag == "result":
                                results[rank] = frame
                                pending.discard(rank)
                            elif frame.tag == "error":
                                failures[rank] = frame.meta.get(
                                    "error", "unknown error"
                                )
                        if rank in pending and rank not in failures:
                            failures[rank] = (
                                f"exited with code {p.exitcode} before reporting"
                            )
        finally:
            if failures or pending:
                self.terminate()
        if failures:
            raise WorkerFailure(failures)
        for p in self.processes:
            p.join(timeout=5.0)
        for ch in self.channels:
            ch.close()
        return [results[r] for r in range(self.world)]


# -------------------------------------------------------------- train fit
def snapshot_trainer_state(trainer) -> dict:
    """The resumable half of a trainer: weights, optimizer, cursors.

    This is what makes a process fit *continue* the session exactly like a
    local fit would — a freshly-built worker loads this plus the shared
    memory segments and is indistinguishable from the parent's trainer.
    Node memory/mailbox contents travel separately (they are copied into
    the shared segments, not serialized twice).
    """
    m_arrs, v_arrs, opt_step = trainer.optimizer.state_arrays()
    arrays = {
        "model": np.frombuffer(trainer.model.to_bytes(), dtype=np.uint8),
        "decoder": np.frombuffer(trainer.decoder.to_bytes(), dtype=np.uint8),
    }
    for idx, (mi, vi) in enumerate(zip(m_arrs, v_arrs)):
        arrays[f"opt/m{idx}"] = mi.copy()
        arrays[f"opt/v{idx}"] = vi.copy()
    meta = {
        "opt_step": opt_step,
        "iteration": trainer._iteration,
        "sweep_negative_offset": trainer._sweep_negative_offset,
        "groups": [
            {
                "index": g.index,
                "position": g.position,
                "prev_batch": g.prev_batch,
                "sweeps_completed": g.sweeps_completed,
            }
            for g in trainer.groups
        ],
    }
    return {"meta": meta, "arrays": arrays}


def load_trainer_state(trainer, meta: dict, arrays: Dict[str, np.ndarray]) -> None:
    """Inverse of :func:`snapshot_trainer_state` (weights/optimizer/cursors)."""
    trainer.model.from_bytes(arrays["model"].tobytes())
    trainer.decoder.from_bytes(arrays["decoder"].tobytes())
    m_arrs, v_arrs, _ = trainer.optimizer.state_arrays()
    for idx, (mi, vi) in enumerate(zip(m_arrs, v_arrs)):
        mi[...] = arrays[f"opt/m{idx}"]
        vi[...] = arrays[f"opt/v{idx}"]
    trainer.optimizer._step = int(meta["opt_step"])
    for g, cursor in zip(trainer.groups, meta["groups"]):
        g.position = int(cursor["position"])
        g.prev_batch = int(cursor["prev_batch"])
        g.sweeps_completed = int(cursor["sweeps_completed"])
    trainer._iteration = int(meta["iteration"])
    trainer._sweep_negative_offset = int(meta["sweep_negative_offset"])


def run_process_fit(
    config,
    trainer,
    *,
    epochs: Optional[int] = None,
    max_iterations: Optional[int] = None,
    eval_every_sweeps: int = 1,
    verbose: bool = False,
    timeout: float = DEFAULT_TIMEOUT,
) -> Tuple[dict, Dict[str, np.ndarray], List[SharedGroupState]]:
    """Execute ``config`` across ``i×k`` worker processes, **continuing**
    from ``trainer``'s current state (weights, optimizer moments, node
    memory, cursors) — the same semantics as calling ``trainer.train``
    locally.  The shared segments start as copies of the trainer's group
    states; rank 0 receives the resumable state and broadcasts it to the
    fleet over the wire.

    Returns ``(meta, arrays, group_states)`` from rank 0: the training
    result + cursor metadata, the trained weight/optimizer arrays, and the
    (closed-pending) shared group states still holding the final node
    memory of every group.  The caller copies what it needs and must call
    ``close()``/``unlink()`` on each group state (``apply_process_result``
    does all of this for a Session trainer).
    """
    from .worker import train_worker

    plan = config.parallel
    world = plan.i * plan.k
    graph = trainer.graph
    comb = config.train.comb

    group_states = create_group_states(
        plan.k,
        num_nodes=graph.num_nodes,
        memory_dim=config.model.memory_dim,
        edge_dim=graph.edge_dim,
        comb=comb,
    )
    # continue from the parent's node memory, not from zero state
    for st, g in zip(group_states, trainer.groups):
        st.memory.copy_from(g.memory)
        st.mailbox.copy_from(g.mailbox)
    shared_specs = [st.spec.to_dict() for st in group_states]
    init_state = snapshot_trainer_state(trainer)

    world_comms = make_local_communicators(world, default_timeout=timeout)
    group_comms: List[Communicator] = []
    for m in range(plan.k):
        if plan.i == 1:
            group_comms.append(Communicator(0, 1))
        else:
            group_comms.extend(make_local_communicators(plan.i, default_timeout=timeout))

    train_meta = {
        "epochs": epochs if epochs is not None else config.train.epochs,
        "max_iterations": max_iterations,
        "eval_every_sweeps": eval_every_sweeps,
        "verbose": verbose,
    }
    config_dict = config.to_dict()
    rank_kwargs = [
        {
            "config_dict": config_dict,
            "shared_specs": shared_specs,
            "world_comm": world_comms[rank],
            "group_comm": group_comms[rank],
            "train_meta": train_meta,
            # only rank 0 carries the resumable state; it reaches the other
            # ranks through the weight broadcast (Module.to_bytes frames)
            "init_state": init_state if rank == 0 else None,
        }
        for rank in range(world)
    ]

    group = ProcessGroup(train_worker, rank_kwargs, timeout=timeout)
    try:
        results = group.start().join()
    except BaseException:
        for st in group_states:
            st.close()
            st.unlink()
        raise
    finally:
        # the children own duplicated pipe ends; drop the parent's copies so
        # repeated fits in one session do not accumulate file descriptors
        for comm in world_comms + group_comms:
            comm.close()
    root = results[0]
    return root.meta, root.arrays, group_states


def apply_process_result(
    trainer,
    meta: dict,
    arrays: Dict[str, np.ndarray],
    group_states: List[SharedGroupState],
):
    """Fold a process fit's final state into a local trainer, so the
    Session's ``evaluate`` / ``save`` / ``serve`` continue from exactly the
    state rank 0 finished with.  Consumes (and unlinks) the shared states.
    Returns the reconstructed :class:`~repro.train.TrainResult`.
    """
    from ..train.distributed import HistoryPoint, TrainResult

    # worker result meta matches the snapshot layout except the iteration
    # count, which it reports as "iterations_run"
    load_trainer_state(
        trainer, {**meta, "iteration": meta["iterations_run"]}, arrays
    )
    for g, st in zip(trainer.groups, group_states):
        g.memory.copy_from(st.memory)
        g.mailbox.copy_from(st.mailbox)
        st.close()
        st.unlink()

    result = TrainResult(config_label=meta["config_label"])
    result.history = [HistoryPoint(**point) for point in meta["history"]]
    result.best_val = float(meta["best_val"])
    result.iterations_to_best = int(meta["iterations_to_best"])
    result.iterations_run = int(meta["iterations_run"])
    result.test_metric = float(meta["test_metric"])
    return result
