"""Runtime scaling benchmark: step throughput at 1 → 2 → 4 workers.

Measures the process backend on the hot-path bench workload (the same
synthetic graph and trainer shape as ``BENCH_hotpath.json``) under weak
scaling — the paper's §4 protocol: the *local* batch stays fixed, so the
global batch (and events per optimizer step) grows with the worker count.
Each ``w`` runs an ``w×1×1`` plan, i.e. ``w`` mini-batch-parallel worker
processes sharing one node memory.

Two throughputs are reported per worker count, both measured, neither
inferred from a model:

* ``events_per_sec`` — wall-clock training-loop throughput (what this host
  actually delivered).  On a host with at least ``w`` cores this is the
  number that shows the parallel speedup; on a core-starved host (CI
  sandboxes, ``host_cpus`` in the report) the workers time-share and it
  stays near the 1-worker line.
* ``cpu_events_per_sec`` — events divided by the *maximum per-rank CPU
  time* (``time.process_time`` inside the worker loop).  Ranks burn CPU
  only while computing (collective waits sleep), so this measures how well
  per-rank step cost holds up under weak scaling.  It is an **upper
  bound** on multi-core wall throughput, not a forecast: waits that stay
  serialized on any core count (the rank-ordered write-back commits) do
  not burn CPU either — ``sync_frac`` records that share.  Reported
  separately and labeled as such, never blended into the wall number.

``write_report`` emits ``BENCH_runtime.json`` next to ``BENCH_hotpath.json``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import shutil
import tempfile
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from ..api.config import (
    DataConfig,
    ExperimentConfig,
    ModelConfig,
    ObsConfig,
    TrainConfig,
)
from ..obs.trace import ENV_TRACE_DIR, env_trace_dir
from ..parallel.config import ParallelConfig

_NO_EVAL = 10**9  # eval cadence that never fires inside a bench window


def bench_config(workers: int = 1, batch_size: int = 100, seed: int = 0) -> ExperimentConfig:
    """The hot-path trainer shape as a declarative ``w×1×1`` experiment."""
    return ExperimentConfig(
        data=DataConfig(dataset="hotpath", scale=0.01, seed=seed),
        model=ModelConfig(
            memory_dim=24, time_dim=12, embed_dim=24, num_neighbors=10
        ),
        parallel=ParallelConfig(i=workers, j=1, k=1),
        train=TrainConfig(
            batch_size=batch_size,
            num_negative_groups=4,
            eval_candidates=10,
            seed=seed,
            prep_cache_batches=512,
        ),
    )


def _with_workers(
    base: ExperimentConfig,
    workers: int,
    trace_dir: Optional[str] = None,
    topology: Optional[str] = None,
) -> ExperimentConfig:
    """``base`` with its parallel section replaced by ``workers×1×1`` (and
    optionally its ``obs.trace_dir`` pointed at this run's directory and
    its allreduce ``topology`` overridden)."""
    obs = base.obs
    if trace_dir is not None:
        obs = ObsConfig(
            trace_dir=str(trace_dir),
            histogram_reservoir=base.obs.histogram_reservoir,
        )
    train = base.train
    if topology is not None and topology != train.topology:
        train = dataclasses.replace(train, topology=topology)
    return ExperimentConfig(
        data=base.data,
        model=base.model,
        parallel=ParallelConfig(i=workers, j=1, k=1),
        train=train,
        serve=base.serve,
        obs=obs,
    )


def bench_worker_count(
    workers: int,
    steps: int = 30,
    base: Optional[ExperimentConfig] = None,
    timeout: float = 600.0,
    trace_dir: Optional[Union[str, Path]] = None,
    topology: Optional[str] = None,
) -> Dict[str, float]:
    """One measured point: a ``workers×1×1`` process fit of ``steps`` steps.

    The fit always runs under span tracing — the per-phase columns and
    ``sync_s`` come from the workers' telemetry, not bench-side timers.
    With ``trace_dir`` the per-rank files and the merged timeline land in
    ``<trace_dir>/w<workers>/`` (each worker count needs its own directory
    or rank files would interleave); without it a temporary directory is
    used and discarded after the phase totals are harvested.
    """
    from ..train.distributed import DistTGLTrainer
    from .launcher import run_process_fit

    tmp = None
    if trace_dir is None:
        tmp = tempfile.mkdtemp(prefix=f"repro-trace-w{workers}-")
        run_dir = Path(tmp)
    else:
        run_dir = Path(trace_dir) / f"w{workers}"
    cfg = _with_workers(
        base if base is not None else bench_config(),
        workers,
        trace_dir=str(run_dir),
        topology=topology,
    )
    trainer = DistTGLTrainer(cfg.build_dataset(), cfg.parallel, cfg.trainer_spec())
    # the env override must not collapse every worker count into one trace
    # directory (rank files would interleave) — the per-count config wins
    env_saved = os.environ.pop(ENV_TRACE_DIR, None)
    try:
        meta, _, states = run_process_fit(
            cfg,
            trainer,
            max_iterations=steps,
            eval_every_sweeps=_NO_EVAL,
            timeout=timeout,
        )
    finally:
        if env_saved is not None:
            os.environ[ENV_TRACE_DIR] = env_saved
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
    for st in states:
        st.close()
        st.unlink()

    ranks = meta["bench"]
    events = steps * workers * cfg.train.batch_size    # j = k = 1
    wall = max(r["loop_s"] for r in ranks)
    cpu = max(r["cpu_s"] for r in ranks)
    sync = max(r["sync_s"] for r in ranks)
    # per-phase seconds from the span telemetry: max across ranks, like the
    # wall/cpu/sync columns (the slowest rank paces the fleet)
    phases: Dict[str, float] = {}
    for r in ranks:
        for name, total in (r.get("phases") or {}).items():
            phases[name] = max(phases.get(name, 0.0), float(total))
    point = {
        "workers": workers,
        "hosts": cfg.parallel.machines,
        "topology": cfg.train.topology,
        "steps": steps,
        "events": events,
        "wall_s": round(wall, 4),
        "max_rank_cpu_s": round(cpu, 4),
        "sync_s": round(sync, 4),
        "sync_frac": round(sync / wall, 4) if wall else 0.0,
        "step_ms": round(1e3 * wall / steps, 3),
        "events_per_sec": round(events / wall, 2) if wall else 0.0,
        "cpu_events_per_sec": round(events / cpu, 2) if cpu else 0.0,
        "phases_s": {k: round(v, 4) for k, v in sorted(phases.items())},
    }
    if trace_dir is not None:
        point["trace_dir"] = str(run_dir)
    return point


def run_runtime_bench(
    worker_counts: Iterable[int] = (1, 2, 4),
    steps: int = 30,
    batch_size: int = 100,
    seed: int = 0,
    timeout: float = 600.0,
    base: Optional[ExperimentConfig] = None,
    trace_dir: Optional[Union[str, Path]] = None,
    topology: str = "star",
) -> Dict:
    """Measure every worker count; return the report dict.

    ``topology`` selects the gradient-allreduce wiring (``star``, ``ring``
    or ``tree`` — bitwise-identical results, different byte movement) for
    the swept points.  At the largest multi-worker count the report also
    records a dedicated ``ring_vs_star`` comparison of the measured
    ``sync_s``, the serialized/synchronized share that topology actually
    changes.

    ``base`` supplies the data/model/train sections of the measured
    workload (the CLI's ``--config``); by default it is the hot-path shape
    from :func:`bench_config` with ``batch_size``/``seed`` applied.

    Interpretation note: ``cpu_events_per_sec`` divides by per-rank *CPU*
    time, so collective waits — including waits caused by the rank-ordered
    serial write-back commits, which stay serialized no matter how many
    cores exist — do not count against it.  It is therefore an *upper
    bound* on multi-core wall throughput; ``sync_frac`` shows how much of
    the step the serialized/synchronized share occupied on this host.
    """
    worker_counts = sorted(set(int(w) for w in worker_counts))
    if any(w < 1 for w in worker_counts):
        raise ValueError("worker counts must be positive")
    if base is None:
        base = bench_config(batch_size=batch_size, seed=seed)
    if trace_dir is None:
        # `repro.cli runtime-bench --trace-dir` sets the argument; the env
        # var is the no-flag way to keep the per-count traces around
        trace_dir = env_trace_dir()
    points = {
        str(w): bench_worker_count(
            w,
            steps=steps,
            base=base,
            timeout=timeout,
            trace_dir=trace_dir,
            topology=topology,
        )
        for w in worker_counts
    }
    report = {
        "benchmark": "runtime_scaling",
        "config": {
            "dataset": base.data.dataset,
            "plan": "w x 1 x 1 (weak scaling, fixed local batch)",
            "topology": topology,
            "steps": steps,
            "local_batch": base.train.batch_size,
            "seed": base.train.seed,
            "host_cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1),
            "platform": platform.platform(),
        },
        "workers": points,
    }
    if trace_dir is not None:
        report["trace_dir"] = str(trace_dir)
    base_point = points.get("1")
    if base_point is not None:
        report["speedup_vs_1"] = {
            w: round(p["events_per_sec"] / base_point["events_per_sec"], 3)
            for w, p in points.items()
            if w != "1" and base_point["events_per_sec"]
        }
        report["cpu_speedup_vs_1"] = {
            w: round(p["cpu_events_per_sec"] / base_point["cpu_events_per_sec"], 3)
            for w, p in points.items()
            if w != "1" and base_point["cpu_events_per_sec"]
        }
    largest = worker_counts[-1]
    if largest >= 2:
        # the star root funnels 2(w-1) full gradient vectors through one
        # rank per step; the ring pipelines 2 chunks per link — sync_s is
        # where that difference lands (results stay bitwise identical)
        comparison: Dict[str, Dict] = {}
        for topo in ("star", "ring"):
            if topo == topology:
                pt = points[str(largest)]
            else:
                pt = bench_worker_count(
                    largest, steps=steps, base=base, timeout=timeout, topology=topo
                )
            comparison[topo] = {
                "sync_s": pt["sync_s"],
                "sync_frac": pt["sync_frac"],
                "wall_s": pt["wall_s"],
                "step_ms": pt["step_ms"],
            }
        report["ring_vs_star"] = {
            "workers": largest,
            **comparison,
            "ring_sync_speedup": round(
                comparison["star"]["sync_s"] / comparison["ring"]["sync_s"], 3
            )
            if comparison["ring"]["sync_s"]
            else None,
        }
    return report


def write_report(report: Dict, path: Optional[str] = None) -> Path:
    """Write the report to ``BENCH_runtime.json`` (repo root by default)."""
    if path is None:
        out = Path(__file__).resolve().parents[3] / "BENCH_runtime.json"
    else:
        out = Path(path)
    out.write_text(json.dumps(report, indent=2) + "\n")
    return out
