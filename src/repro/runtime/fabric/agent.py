"""The fabric host agent: ``python -m repro.cli agent --join HOST:PORT``.

One agent runs per machine of an ``i×j×k@machines`` plan.  It dials the
controller's rendezvous socket, identifies itself, and from then on is a
thin process manager for its machine:

* **join** — ``hello/agent`` carries the agent's pid and a local clock
  sample; the ``welcome`` reply assigns the machine index and returns the
  controller's clock, from which the agent computes an NTP-style offset
  (``t_ctrl - (t0 + t1) / 2``) that its ranks use to re-anchor their trace
  timestamps into the controller's timebase.
* **spawn** — the controller ships a spawn bundle (config dict, shared
  segment specs, commit-slab spec — names only; the arrays live in shared
  memory) and a rank list; the agent starts one daemon process per rank
  running :func:`~repro.runtime.fabric.worker.fabric_rank_shell`.  Ranks
  dial the controller themselves — the agent never relays training
  traffic.
* **heartbeat** — a background thread pings every ``hb_interval`` seconds;
  silence past the controller's timeout declares the machine lost.
* **death** — if the agent dies (the chaos drill SIGKILLs it), its ranks
  die with it through their parent watchdogs; if the *controller* dies,
  the agent kills its children and exits rather than leak a fleet.

The agent is intentionally transport-only: it holds no training state, so
a replacement agent spawned mid-run (machine-loss recovery) is
indistinguishable from an original one.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from typing import Dict, Optional

from ...testing.failpoints import ENV_VAR
from ..transport import Channel, RetryPolicy, TransportError, socket_channel

__all__ = ["agent_main", "parse_hostport"]


def parse_hostport(text: str) -> tuple:
    """``"host:port"`` → ``(host, port)`` (the ``--join`` argument)."""
    if ":" not in text:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    host, port_s = text.rsplit(":", 1)
    return host or "127.0.0.1", int(port_s)


class _LockedChannel:
    """Serialize sends from the heartbeat thread and the main loop (frame
    writes are multi-part; interleaving would corrupt the stream)."""

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        self._lock = threading.Lock()

    def send(self, tag: str, meta: Optional[dict] = None) -> None:
        with self._lock:
            self.channel.send(tag, meta=meta or {})

    def recv(self, timeout: Optional[float] = None):
        return self.channel.recv(timeout=timeout)

    def poll(self, timeout: float = 0.0) -> bool:
        return self.channel.poll(timeout)

    def close(self) -> None:
        self.channel.close()


def agent_main(
    join: str,
    *,
    retry: Optional[RetryPolicy] = None,
    timeout: float = 600.0,
    quiet: bool = False,
) -> int:
    """Run the host agent until the controller shuts it down.

    Returns a process exit code: 0 on an orderly shutdown, 1 when the
    controller disappears or the join handshake fails.
    """
    from .worker import fabric_rank_shell

    host, port = parse_hostport(join)
    retry = retry or RetryPolicy()
    try:
        raw = socket_channel(host, port, retry, default_timeout=timeout)
    except TransportError as exc:
        if not quiet:
            print(f"[fabric-agent] cannot reach controller {join}: {exc}")
        return 1
    ctrl = _LockedChannel(raw)
    t0 = time.time()
    ctrl.send("hello/agent", {"pid": os.getpid(), "time": t0})
    try:
        welcome = raw.expect("welcome", timeout=retry.handshake_timeout)
    except TransportError as exc:
        if not quiet:
            print(f"[fabric-agent] join rejected: {exc}")
        ctrl.close()
        return 1
    t1 = time.time()
    agent_id = int(welcome.meta["agent_id"])
    hb_interval = float(welcome.meta.get("hb_interval", 2.0))
    # NTP-style offset: controller clock minus the midpoint of the local
    # send/receive window — ranks add it to their trace epoch anchors
    clock_offset = float(welcome.meta.get("time", t0)) - (t0 + t1) / 2.0
    if not quiet:
        print(f"[fabric-agent] joined as machine {agent_id} (pid {os.getpid()})")

    stop = threading.Event()

    def heartbeat() -> None:
        while not stop.wait(hb_interval):
            try:
                ctrl.send("hb", {"agent_id": agent_id})
            except Exception:
                return  # the main loop will see the dead channel too

    threading.Thread(target=heartbeat, daemon=True, name="fabric-hb").start()

    ctx = mp.get_context("spawn")
    children: Dict[int, mp.Process] = {}
    exit_code = 0
    try:
        while True:
            try:
                if not ctrl.poll(0.25):
                    _reap(children, ctrl)
                    continue
                frame = ctrl.recv(timeout=5.0)
            except TransportError:
                # controller gone: a machine must not outlive its fleet
                exit_code = 1
                break
            if frame.tag == "spawn":
                bundle = dict(frame.meta["bundle"])
                bundle["agent_pid"] = os.getpid()
                bundle["clock_offset"] = clock_offset
                bundle["clear_failpoints"] = bool(
                    frame.meta.get("clear_failpoints", False)
                )
                if bundle["clear_failpoints"]:
                    # respawned ranks inherit the agent's environment via
                    # the spawn context — scrub the schedule here too, or a
                    # replacement agent re-arms the very fault it is
                    # recovering from on every future spawn
                    os.environ.pop(ENV_VAR, None)
                bundle["generation"] = int(frame.meta.get("generation", 0))
                for rank in frame.meta["ranks"]:
                    rank = int(rank)
                    old = children.pop(rank, None)
                    if old is not None and old.is_alive():
                        old.kill()
                        old.join(timeout=5.0)
                    proc = ctx.Process(
                        target=fabric_rank_shell,
                        args=(rank, bundle),
                        name=f"fabric-rank{rank}",
                        daemon=True,
                    )
                    proc.start()
                    children[rank] = proc
                if not quiet:
                    print(
                        f"[fabric-agent {agent_id}] spawned ranks "
                        f"{list(map(int, frame.meta['ranks']))} "
                        f"(generation {bundle['generation']})"
                    )
            elif frame.tag == "kill":
                rank = int(frame.meta["rank"])
                proc = children.get(rank)
                if proc is not None and proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5.0)
            elif frame.tag == "shutdown":
                if frame.meta.get("kill"):
                    for proc in children.values():
                        if proc.is_alive():
                            proc.kill()
                for proc in children.values():
                    proc.join(timeout=10.0)
                    if proc.is_alive():  # pragma: no cover - last resort
                        proc.kill()
                        proc.join(timeout=5.0)
                break
            _reap(children, ctrl)
    finally:
        stop.set()
        if exit_code != 0:
            for proc in children.values():
                if proc.is_alive():
                    proc.kill()
            for proc in children.values():
                proc.join(timeout=5.0)
        ctrl.close()
    return exit_code


def _reap(children: Dict[int, mp.Process], ctrl: _LockedChannel) -> None:
    """Report dead children once; the controller decides what it means
    (exit 0 after a result frame is normal, anything else is a dead rank)."""
    for rank, proc in list(children.items()):
        if not proc.is_alive():
            proc.join(timeout=0.1)
            try:
                ctrl.send(
                    "child/exit", {"rank": rank, "code": int(proc.exitcode or 0)}
                )
            except Exception:
                pass
            del children[rank]
