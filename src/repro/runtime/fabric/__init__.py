"""Multi-host distributed runtime: the fabric backend.

This package turns an ``i×j×k@machines`` :class:`~repro.api.config.ParallelConfig`
into real processes on real (or simulated-localhost) hosts:

* :mod:`.wire` — the rank/machine layout, the per-rank link plan over raw
  TCP sockets, and :class:`~.wire.RankComms` bundling the five
  communicators each rank needs (world, slot, row, leader, token chain).
* :mod:`.agent` — the per-host daemon (``repro.cli agent --join``) that
  rendezvouses with the controller and spawns its slice of the rank grid.
* :mod:`.worker` — the rank training loop: the process backend's
  single-rank-per-(i,k) loop generalized so the ``j`` epoch dimension is
  fanned out into pipelined ranks, with a two-level gradient reduction
  (slot fold, then cross-machine leader allreduce) fixed in an order that
  keeps the whole fabric bitwise-identical to ``backend="local"``.
* :mod:`.launcher` — :class:`FabricLauncher` (rendezvous + supervision +
  machine-loss recovery) and :func:`run_fabric_fit`, the fabric analogue
  of :func:`~repro.runtime.launcher.run_process_fit`.
"""

from .agent import agent_main, parse_hostport
from .launcher import FabricLauncher, run_fabric_fit
from .wire import RankComms, coords_of, link_plan, machine_of, rank_of, ranks_of_machine
from .worker import fabric_rank_shell

__all__ = [
    "FabricLauncher",
    "RankComms",
    "agent_main",
    "coords_of",
    "fabric_rank_shell",
    "link_plan",
    "machine_of",
    "parse_hostport",
    "rank_of",
    "ranks_of_machine",
    "run_fabric_fit",
]
