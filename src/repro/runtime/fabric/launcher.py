"""Fabric controller: rendezvous, spawn fan-out, machine-loss recovery.

:class:`FabricLauncher` generalizes :class:`~repro.runtime.launcher.ProcessGroup`
from "N local child processes" to "N host agents, each spawning its slice
of the rank grid".  The controller is a plain TCP server:

* **rendezvous** — agents dial in (``repro.cli agent --join host:port``)
  and are assigned machine indices in join order; each receives a spawn
  bundle naming the experiment config and the shared-memory segments, and
  starts its contiguous rank range.  Extra agents beyond ``machines`` are
  rejected at the door.  In *managed* mode the controller launches the
  agent processes itself (same entrypoint, via subprocess), so a single
  ``fit(backend="fabric")`` call needs no manual orchestration.
* **wiring** — every rank opens its own listener and reports the address;
  once all ``i·j·k`` hellos are in, the controller ships each rank its
  link plan (see :mod:`.wire`) and the fabric wires itself peer-to-peer —
  training bytes never route through the controller.
* **supervision** — one select loop over the listener, agent channels and
  rank channels.  Heartbeat silence, an agent channel EOF, or a managed
  agent's process exit all declare the machine lost; a lost machine marks
  every one of its ranks dead (their parent watchdogs guarantee the
  processes are going down).  Survivors park exactly as in the process
  backend — faster, in fact, since a parking rank closes all its sockets
  and the EOF cascade parks the fleet within one collective op.
* **recovery** — the process backend's rollback generalized to machine
  loss: restore the live segments from the sealed shadow slot, spawn a
  *replacement agent* for each lost machine (managed subprocess, even
  when the original joined externally), respawn lost ranks with
  failpoints neutralized, hand survivors the next generation, re-collect
  addresses, re-wire, resume.  Bounded by
  :class:`~repro.runtime.launcher.RecoveryPolicy.max_restarts`; past the
  budget the dead host surfaces as a
  :class:`~repro.runtime.launcher.WorkerFailure` naming every lost rank.

:func:`run_fabric_fit` mirrors :func:`~repro.runtime.launcher.run_process_fit`
— same iteration-plan arithmetic, same commit slab and shadow slots, same
``(meta, arrays, group_states)`` result contract — so the Session treats
the two backends identically.  Shared-memory segments are created by the
controller; agents on the same box attach by name (the honest localhost
simplification — the wire protocol itself never assumes it).
"""

from __future__ import annotations

import os
import select
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ...obs import get_registry
from ...obs.merge import merge_trace_dir
from ...obs.trace import Tracer, resolve_trace_dir
from ...testing import failpoints
from ..launcher import (
    DEFAULT_TIMEOUT,
    RecoveryPolicy,
    SlabCheckpointer,
    WorkerFailure,
    prepare_recovery_state,
)
from ..sharedmem import CommitSlab, SharedGroupState, create_group_states, destroy_states
from ..transport import Channel, Frame, SocketEndpoint, TransportError
from .wire import link_plan, machine_of, ranks_of_machine

__all__ = ["FabricLauncher", "run_fabric_fit"]


@dataclass
class _Agent:
    """Controller-side record of one joined host agent."""

    channel: Channel
    pid: int
    proc: Optional[subprocess.Popen] = None  # managed agents only
    last_hb: float = field(default_factory=time.monotonic)
    alive: bool = True


def _agent_command(join: str) -> List[str]:
    return [sys.executable, "-m", "repro.cli", "agent", "--join", join, "--quiet"]


def _agent_env() -> dict:
    """Child env with the repro package importable regardless of how the
    controller itself was launched."""
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


class FabricLauncher:
    """Rendezvous server + fleet supervisor for one fabric fit.

    Everything experiment-specific arrives pre-built (spawn bundle, commit
    slab, shadow pairs, live segments) — the launcher only moves control
    frames and processes.  ``run()`` returns the rank-ordered result
    frames or raises :class:`WorkerFailure`.
    """

    def __init__(
        self,
        *,
        plan,
        topology: str,
        bundle: dict,
        policy: RecoveryPolicy,
        timeout: float,
        slab: CommitSlab,
        shadow_pairs: List[List[SharedGroupState]],
        live_states: List[SharedGroupState],
        rendezvous: str = "127.0.0.1:0",
        managed_agents: bool = True,
        tracer: Optional[Tracer] = None,
        hb_interval: float = 2.0,
        hb_timeout: float = 10.0,
        checkpointer: Optional[SlabCheckpointer] = None,
    ) -> None:
        self.plan = plan
        self.world = plan.i * plan.j * plan.k
        self.machines = plan.machines
        self.topology = topology
        self.bundle = bundle
        self.policy = policy
        self.timeout = timeout
        self.slab = slab
        self.shadow_pairs = shadow_pairs
        self.live_states = live_states
        self.rendezvous = rendezvous
        self.managed = managed_agents
        self.tracer = tracer
        self.hb_interval = hb_interval
        self.hb_timeout = hb_timeout

        self.listener: Optional[socket.socket] = None
        self.agents: Dict[int, _Agent] = {}
        self.pending_machines: List[int] = list(range(self.machines))
        self.unassigned_procs: List[subprocess.Popen] = []
        self.rank_chans: Dict[int, Channel] = {}
        self.rank_addrs: Dict[int, Tuple[str, int]] = {}
        self.status: Dict[int, str] = {}      # running | parked | dead | done
        self.diags: Dict[int, str] = {}
        self.park_iters: Dict[int, int] = {}
        self.results: Dict[int, Frame] = {}
        self.awaiting_hello: Set[int] = set()
        self.dead_machines: Set[int] = set()
        self.generation = 0
        self.restarts = 0
        self._clear_on_spawn = False
        self._plans = link_plan(plan, topology)
        self.checkpointer = checkpointer
        # the iteration plan's absolute target: a sealed commit at (or
        # past) it means faults land in the finalization window
        tm = bundle.get("train_meta") or {}
        self.target_iteration: Optional[int] = (
            int(tm["target_iteration"]) if "target_iteration" in tm else None
        )
        # per-episode restart accounting (see _ElasticSupervisor): every
        # recovery rolling back to the same sealed commit is one restart
        self._episode_seal: Optional[Tuple[int, int]] = None
        self._episode_retries = 0
        # once the fleet enters finalize recovery, every later spawn is a
        # finalize-only replay (nothing re-enters the training loop)
        self._finalize_mode = False

    # ------------------------------------------------------------ lifecycle
    def _bind(self) -> Tuple[str, int]:
        host, port_s = self.rendezvous.rsplit(":", 1)
        host = host or "127.0.0.1"
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, int(port_s)))
        sock.listen(self.machines + self.world + 8)
        self.listener = sock
        bound = sock.getsockname()
        self.bundle["controller"] = [bound[0], int(bound[1])]
        return bound[0], int(bound[1])

    def _spawn_agent(self, join: str) -> None:
        env = _agent_env()
        if self._clear_on_spawn:
            # a replacement agent must not re-arm the inherited failpoint
            # schedule: its children neutralize in-process, but the agent's
            # own environment would re-export the specs to every future
            # spawn — scrub at the source
            env.pop(failpoints.ENV_VAR, None)
        proc = subprocess.Popen(_agent_command(join), env=env)
        self.unassigned_procs.append(proc)

    # -------------------------------------------------------------- running
    def run(self) -> List[Frame]:
        host, port = self._bind()
        join = f"{host}:{port}"
        try:
            if self.managed:
                for _ in range(self.machines):
                    self._spawn_agent(join)
            self.awaiting_hello = set(range(self.world))
            for rank in range(self.world):
                self.status[rank] = "dead"  # not yet joined
            deadline = time.monotonic() + self.timeout
            self._await(
                lambda: not self.pending_machines,
                deadline,
                f"{self.machines} host agents at {join}",
            )
            self._await(
                lambda: not self.awaiting_hello,
                deadline,
                f"{self.world} rank hellos",
            )
            self._send_wire(range(self.world))
            self._monitor(deadline)
            return [self.results[r] for r in range(self.world)]
        except BaseException:
            self._cleanup(kill=True)
            raise

    def _await(self, predicate, deadline: float, what: str) -> None:
        while not predicate():
            if time.monotonic() > deadline:
                self._fail(f"fabric rendezvous timed out waiting for {what}")
            self._step(0.5)

    def _monitor(self, deadline: float) -> None:
        park_deadline: Optional[float] = None
        while any(self.status[r] != "done" for r in range(self.world)):
            if time.monotonic() > deadline:
                self._fail(f"no result within {self.timeout:.0f}s")
            self._step(0.5)
            if self.checkpointer is not None:
                self.checkpointer.tick()
            troubled = [
                r for r, st in self.status.items() if st in ("parked", "dead")
            ]
            if not troubled:
                park_deadline = None
                continue
            if park_deadline is None:
                park_deadline = time.monotonic() + self.policy.grace
            undecided = [r for r, st in self.status.items() if st == "running"]
            if not undecided:
                self._recover_guarded()
                park_deadline = None
            elif time.monotonic() > park_deadline:
                for rank in undecided:
                    ag = self.agents.get(machine_of(self.plan, rank))
                    if ag is not None and ag.alive:
                        try:
                            ag.channel.send("kill", meta={"rank": rank})
                        except TransportError:
                            pass
                    self.diags.setdefault(
                        rank,
                        f"unresponsive for {self.policy.grace:.0f}s "
                        f"(wedged); killed",
                    )
                    self.status[rank] = "dead"
                self._recover_guarded()
                park_deadline = None
        # orderly teardown: agents shut down, channels drained
        self._cleanup(kill=False)

    # ---------------------------------------------------------- event pump
    def _step(self, timeout: float = 0.5) -> None:
        waitables: Dict[object, Tuple[str, Optional[int]]] = {
            self.listener: ("listen", None)
        }
        for mi, ag in self.agents.items():
            if ag.alive:
                waitables[ag.channel.endpoint.sock] = ("agent", mi)
        for rank, ch in self.rank_chans.items():
            if self.status.get(rank) in ("running", "parked"):
                waitables[ch.endpoint.sock] = ("rank", rank)
        try:
            ready, _, _ = select.select(list(waitables), [], [], timeout)
        except OSError:  # pragma: no cover - a racing close
            ready = []
        for obj in ready:
            kind, key = waitables[obj]
            if kind == "listen":
                self._accept()
            elif kind == "agent":
                self._drain_agent(key)
            else:
                self._drain_rank(key)
        self._check_agents()

    def _accept(self) -> None:
        try:
            self.listener.settimeout(0.0)
            sock, _ = self.listener.accept()
        except (OSError, socket.timeout):
            return
        finally:
            self.listener.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        ch = Channel(SocketEndpoint(sock), default_timeout=self.timeout)
        try:
            frame = ch.recv(timeout=10.0)
        except TransportError:
            ch.close()
            return
        if frame.tag == "hello/agent":
            self._admit_agent(ch, frame.meta)
        elif frame.tag == "hello/rank":
            self._admit_rank(ch, frame.meta)
        else:
            ch.close()

    def _admit_agent(self, ch: Channel, meta: dict) -> None:
        if not self.pending_machines:
            # agent count exceeds the plan's machines: turn it away loudly
            try:
                ch.send(
                    "error",
                    meta={
                        "error": f"fabric already has {self.machines} agents "
                        f"(plan {self.plan.label()})"
                    },
                )
            except TransportError:
                pass
            ch.close()
            return
        mi = self.pending_machines.pop(0)
        pid = int(meta.get("pid", 0))
        proc = None
        for p in self.unassigned_procs:
            if p.pid == pid:
                proc = p
                break
        if proc is not None:
            self.unassigned_procs.remove(proc)
        old = self.agents.get(mi)
        if old is not None and old.channel is not ch:
            old.channel.close()
        self.agents[mi] = _Agent(channel=ch, pid=pid, proc=proc)
        self.dead_machines.discard(mi)
        ch.send(
            "welcome",
            meta={
                "agent_id": mi,
                "machines": self.machines,
                "time": time.time(),
                "hb_interval": self.hb_interval,
            },
        )
        ch.send(
            "spawn",
            meta={
                "ranks": ranks_of_machine(self.plan, mi),
                "bundle": self._spawn_bundle(),
                "generation": self.generation,
                "clear_failpoints": self._clear_on_spawn,
            },
        )
        if self.tracer is not None:
            self.tracer.instant("agent-join", machine=mi, generation=self.generation)

    def _spawn_bundle(self) -> dict:
        """The bundle for a (re)spawn frame: once the run is in finalize
        recovery, every spawned rank replays finalization only."""
        if self._finalize_mode:
            return {**self.bundle, "finalize_only": True}
        return self.bundle

    def _admit_rank(self, ch: Channel, meta: dict) -> None:
        rank = int(meta["rank"])
        if not 0 <= rank < self.world:
            ch.close()
            return
        old = self.rank_chans.pop(rank, None)
        if old is not None:
            old.close()
        self.rank_chans[rank] = ch
        self.rank_addrs[rank] = (meta["host"], int(meta["port"]))
        self.status[rank] = "running"
        self.awaiting_hello.discard(rank)

    def _drain_agent(self, mi: int) -> None:
        ag = self.agents.get(mi)
        if ag is None or not ag.alive:
            return
        ch = ag.channel
        try:
            while ch.poll(0.0):
                frame = ch.recv(timeout=1.0)
                if frame.tag == "hb":
                    ag.last_hb = time.monotonic()
                elif frame.tag == "child/exit":
                    rank = int(frame.meta["rank"])
                    code = int(frame.meta.get("code", 0))
                    self._drain_rank(rank)  # a result may have raced the exit
                    if self.status.get(rank) not in ("done",):
                        self.status[rank] = "dead"
                        self.diags.setdefault(
                            rank, f"rank process exited with code {code}"
                        )
        except TransportError:
            self._agent_down(mi, "agent control channel closed")

    def _drain_rank(self, rank: int) -> None:
        ch = self.rank_chans.get(rank)
        if ch is None or self.status.get(rank) == "done":
            return
        try:
            while ch.poll(0.0) and self.status.get(rank) != "done":
                frame = ch.recv(timeout=1.0)
                if frame.tag == "result":
                    self.results[rank] = frame
                    self.status[rank] = "done"
                elif frame.tag == "parked":
                    self.status[rank] = "parked"
                    self.diags.setdefault(
                        rank, f"parked: {frame.meta.get('error', 'peer failure')}"
                    )
                    if "iteration" in frame.meta:
                        self.park_iters[rank] = int(frame.meta["iteration"])
                elif frame.tag == "error":
                    self.diags[rank] = frame.meta.get("error", "unknown error")
        except TransportError:
            if self.status.get(rank) != "done":
                self.status[rank] = "dead"
                self.diags.setdefault(rank, "rank control channel closed")

    def _check_agents(self) -> None:
        now = time.monotonic()
        for mi, ag in list(self.agents.items()):
            if not ag.alive:
                continue
            if ag.proc is not None and ag.proc.poll() is not None:
                self._agent_down(
                    mi, f"agent process exited with code {ag.proc.returncode}"
                )
            elif now - ag.last_hb > self.hb_timeout:
                self._agent_down(mi, f"no heartbeat for {self.hb_timeout:.0f}s")

    def _agent_down(self, mi: int, why: str) -> None:
        """A machine is lost: every non-done rank on it is dead (their
        parent watchdogs are taking the processes down right now)."""
        ag = self.agents.get(mi)
        if ag is None or not ag.alive:
            return
        ag.alive = False
        ag.channel.close()
        if ag.proc is not None:
            try:
                ag.proc.kill()
            except OSError:
                pass
        self.dead_machines.add(mi)
        get_registry().counter("recovery/machine_losses").add()
        if self.tracer is not None:
            self.tracer.instant("machine-lost", machine=mi, reason=why)
        for rank in ranks_of_machine(self.plan, mi):
            if self.status.get(rank) != "done":
                self.status[rank] = "dead"
                self.diags.setdefault(rank, f"host agent {mi} lost: {why}")

    # -------------------------------------------------------------- wiring
    def _send_wire(self, ranks) -> None:
        for rank in ranks:
            if self.status.get(rank) == "done":
                continue
            links = []
            for link in self._plans[rank]:
                entry = {"key": link.key, "peer": link.peer, "dial": link.dial}
                if link.dial:
                    host, port = self.rank_addrs[link.peer]
                    entry["host"] = host
                    entry["port"] = port
                links.append(entry)
            self.rank_chans[rank].send(
                "wire", meta={"generation": self.generation, "links": links}
            )

    # ------------------------------------------------------------ recovery
    def _recover_guarded(self) -> None:
        """Re-entrant wrapper: a fault *inside* recovery (supervisor-side
        failpoint, racing transport error) must not take the fleet down —
        the half-recovered ranks re-park on their collective timeout and
        the monitor loop folds them into the next recovery pass."""
        try:
            self._recover()
        except WorkerFailure:
            raise
        except BaseException as exc:
            get_registry().counter("recovery/recover_faults").add()
            if self.tracer is not None:
                self.tracer.instant(
                    "recover-fault", error=f"{type(exc).__name__}: {exc}"
                )

    def _recover(self) -> None:
        """Roll the fabric back to the last sealed commit: replacement
        agents for lost machines, respawned ranks, a fresh wire plan."""
        failpoints.fire("supervisor.recover")
        slot, sealed_iteration = self.slab.header
        seal = (int(slot), int(sealed_iteration))
        if seal == self._episode_seal:
            # still recovering toward the same sealed commit: concurrent
            # faults and mid-recovery faults fold into one restart
            self._episode_retries += 1
            if self._episode_retries > 8:
                self._fail("repeated faults within one recovery episode")
        else:
            self._episode_seal = seal
            self._episode_retries = 0
            self.restarts += 1
        if self.restarts > self.policy.max_restarts:
            self._fail("failed and restart budget exhausted")
        if (
            self.target_iteration is not None
            and sealed_iteration >= self.target_iteration
        ):
            # every surviving rank already sealed the final commit: the
            # fault landed in the finalization window — replay finalization
            # from the seal instead of rolling back the training loop
            self._recover_finalize(int(slot), int(sealed_iteration))
            return
        if any(st == "done" for st in self.status.values()):
            # unreachable: a rank only finishes past the end barrier, and
            # by then the final seal puts us on the finalize path above
            self._fail("fleet failed after some ranks completed")
        self.generation += 1
        self._clear_on_spawn = True
        depth = max(
            (it - sealed_iteration for it in self.park_iters.values()), default=0
        )
        depth = max(depth, 0)
        dead_ranks = [r for r, st in self.status.items() if st == "dead"]
        lost = sorted(self.dead_machines)
        registry = get_registry()
        registry.counter("recovery/restarts").add()
        registry.gauge("recovery/rollback_depth").set(float(depth))
        registry.gauge("recovery/generation").set(float(self.generation))
        rollback_span = (
            self.tracer.span(
                "rollback",
                generation=self.generation,
                restart=self.restarts,
                slot=int(slot),
                sealed_iteration=int(sealed_iteration),
                depth=int(depth),
                dead_ranks=dead_ranks,
                lost_machines=lost,
            )
            if self.tracer is not None
            else None
        )
        if rollback_span is not None:
            rollback_span.__enter__()
        try:
            for live, pair in zip(self.live_states, self.shadow_pairs):
                live.memory.copy_from(pair[slot].memory)
                live.mailbox.copy_from(pair[slot].mailbox)

            self.awaiting_hello = set(dead_ranks)
            join = "{}:{}".format(*self.bundle["controller"])
            t0 = time.perf_counter()
            for mi in lost:
                # replacement agents are always managed subprocesses, even
                # when the lost one joined externally — recovery must not
                # wait for an operator
                self.pending_machines.append(mi)
                self._spawn_agent(join)
            # ranks that died on surviving machines respawn in place
            by_machine: Dict[int, List[int]] = {}
            for rank in dead_ranks:
                mi = machine_of(self.plan, rank)
                if mi not in self.dead_machines:
                    by_machine.setdefault(mi, []).append(rank)
            for mi, ranks in by_machine.items():
                ag = self.agents.get(mi)
                if ag is None or not ag.alive:
                    continue
                try:
                    ag.channel.send(
                        "spawn",
                        meta={
                            "ranks": sorted(ranks),
                            "bundle": self.bundle,
                            "generation": self.generation,
                            "clear_failpoints": True,
                        },
                    )
                except TransportError:
                    self._agent_down(mi, "spawn request failed")
            # parked survivors advance to the new generation in place
            for rank, st in list(self.status.items()):
                if st != "parked":
                    continue
                try:
                    self.rank_chans[rank].send(
                        "resume", meta={"generation": self.generation}
                    )
                    self.status[rank] = "running"
                except TransportError:
                    self.status[rank] = "dead"
                    self.diags.setdefault(rank, "died while parked")
                    self.awaiting_hello.add(rank)
                    mi = machine_of(self.plan, rank)
                    ag = self.agents.get(mi)
                    if ag is not None and ag.alive:
                        try:
                            ag.channel.send(
                                "spawn",
                                meta={
                                    "ranks": [rank],
                                    "bundle": self.bundle,
                                    "generation": self.generation,
                                    "clear_failpoints": True,
                                },
                            )
                        except TransportError:
                            self._agent_down(mi, "spawn request failed")
            # re-rendezvous: replacement agents join, respawned ranks hello
            deadline = time.monotonic() + self.policy.grace + 60.0
            self._await(
                lambda: not self.pending_machines and not self.awaiting_hello,
                deadline,
                "respawned agents/ranks to rejoin",
            )
            registry.histogram("recovery/respawn_latency_s").record(
                time.perf_counter() - t0
            )
            registry.counter("recovery/respawns").add(len(dead_ranks) or 1)
            self._send_wire(range(self.world))
        finally:
            if rollback_span is not None:
                rollback_span.__exit__(None, None, None)
            if self.tracer is not None:
                self.tracer.flush()
        self.park_iters.clear()

    def _recover_finalize(self, slot: int, sealed_iteration: int) -> None:
        """Finalization-window recovery: the final commit is sealed, so no
        collective work remains — restore the sealed segments and have
        every non-done rank replay finalization from the slab.  Done ranks
        keep their results; no generation bump, no re-wiring (finalize
        ranks never open collectives)."""
        self._finalize_mode = True
        self._clear_on_spawn = True
        registry = get_registry()
        registry.counter("recovery/restarts").add()
        registry.counter("recovery/finalize_recoveries").add()
        registry.gauge("recovery/rollback_depth").set(0.0)
        dead_ranks = [r for r, st in self.status.items() if st == "dead"]
        lost = sorted(self.dead_machines)
        rollback_span = (
            self.tracer.span(
                "rollback",
                generation=self.generation,
                restart=self.restarts,
                slot=int(slot),
                sealed_iteration=int(sealed_iteration),
                depth=0,
                dead_ranks=dead_ranks,
                lost_machines=lost,
                finalize=True,
            )
            if self.tracer is not None
            else None
        )
        if rollback_span is not None:
            rollback_span.__enter__()
        try:
            for live, pair in zip(self.live_states, self.shadow_pairs):
                live.memory.copy_from(pair[slot].memory)
                live.mailbox.copy_from(pair[slot].mailbox)

            self.awaiting_hello = set(dead_ranks)
            join = "{}:{}".format(*self.bundle["controller"])
            t0 = time.perf_counter()
            for mi in lost:
                self.pending_machines.append(mi)
                self._spawn_agent(join)
            by_machine: Dict[int, List[int]] = {}
            for rank in dead_ranks:
                mi = machine_of(self.plan, rank)
                if mi not in self.dead_machines:
                    by_machine.setdefault(mi, []).append(rank)
            for mi, ranks in by_machine.items():
                ag = self.agents.get(mi)
                if ag is None or not ag.alive:
                    continue
                try:
                    ag.channel.send(
                        "spawn",
                        meta={
                            "ranks": sorted(ranks),
                            "bundle": self._spawn_bundle(),
                            "generation": self.generation,
                            "clear_failpoints": True,
                        },
                    )
                except TransportError:
                    self._agent_down(mi, "spawn request failed")
            for rank, st in list(self.status.items()):
                if st != "parked":
                    continue
                try:
                    self.rank_chans[rank].send(
                        "resume",
                        meta={"generation": self.generation, "finalize": True},
                    )
                    self.status[rank] = "running"
                except TransportError:
                    self.status[rank] = "dead"
                    self.diags.setdefault(rank, "died while parked")
                    self.awaiting_hello.add(rank)
                    mi = machine_of(self.plan, rank)
                    ag = self.agents.get(mi)
                    if ag is not None and ag.alive:
                        try:
                            ag.channel.send(
                                "spawn",
                                meta={
                                    "ranks": [rank],
                                    "bundle": self._spawn_bundle(),
                                    "generation": self.generation,
                                    "clear_failpoints": True,
                                },
                            )
                        except TransportError:
                            self._agent_down(mi, "spawn request failed")
            # await the respawns' hellos so the monitor's wedge-killer
            # cannot mistake a still-booting replay rank for a hung one
            deadline = time.monotonic() + self.policy.grace + 60.0
            self._await(
                lambda: not self.pending_machines and not self.awaiting_hello,
                deadline,
                "finalize respawns to rejoin",
            )
            registry.histogram("recovery/respawn_latency_s").record(
                time.perf_counter() - t0
            )
            registry.counter("recovery/respawns").add(len(dead_ranks) or 1)
            # no _send_wire: finalize ranks skip every collective
        finally:
            if rollback_span is not None:
                rollback_span.__exit__(None, None, None)
            if self.tracer is not None:
                self.tracer.flush()
        self.park_iters.clear()

    # -------------------------------------------------------------- failure
    def _fail(self, default: str) -> None:
        failures = dict(self.diags)
        for rank in range(self.world):
            if self.status.get(rank) != "done":
                failures.setdefault(rank, default)
        self._cleanup(kill=True)
        raise WorkerFailure(failures or {0: default})

    def _cleanup(self, kill: bool) -> None:
        for rank, ch in self.rank_chans.items():
            if kill and self.status.get(rank) in ("parked", "running"):
                try:
                    ch.send("abort")
                except TransportError:
                    pass
            ch.close()
        for ag in self.agents.values():
            if ag.alive:
                try:
                    ag.channel.send("shutdown", meta={"kill": kill})
                except TransportError:
                    pass
        procs = [
            ag.proc for ag in self.agents.values() if ag.proc is not None
        ] + self.unassigned_procs
        deadline = time.monotonic() + 10.0
        for proc in procs:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
        for ag in self.agents.values():
            ag.channel.close()
        if self.listener is not None:
            self.listener.close()
            self.listener = None


# --------------------------------------------------------------- train fit
def run_fabric_fit(
    config,
    trainer,
    *,
    epochs: Optional[int] = None,
    max_iterations: Optional[int] = None,
    eval_every_sweeps: int = 1,
    verbose: bool = False,
    timeout: float = DEFAULT_TIMEOUT,
    recovery: Optional[RecoveryPolicy] = None,
    run_state: Optional[dict] = None,
    rendezvous: Optional[str] = None,
    managed_agents: bool = True,
    agents: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 1,
) -> Tuple[dict, Dict[str, np.ndarray], List[SharedGroupState]]:
    """Execute ``config`` as ``i×j×k`` ranks over ``machines`` host agents,
    continuing from ``trainer``'s current state — the fabric analogue of
    :func:`~repro.runtime.launcher.run_process_fit` with the ``j``
    dimension fanned out into real pipelined ranks.

    ``rendezvous`` is the controller's bind address (default an ephemeral
    localhost port).  ``managed_agents=True`` spawns the host agents as
    subprocesses; ``False`` waits for externally-launched
    ``repro.cli agent --join`` processes (the CI smoke mode).  ``agents``
    optionally asserts the expected agent count — a fabric plan needs
    exactly ``plan.machines`` of them.

    ``checkpoint_dir`` enables controller-side periodic checkpoints: every
    ``checkpoint_every`` commit boundaries the sealed slab is exported as
    a v2 checkpoint directory (same exporter as the process backend), so
    a hard-killed fabric fit resumes bitwise via ``Session.resume``.

    Returns ``(meta, arrays, group_states)`` with the identical contract
    (and, by construction, bitwise-identical contents) as the process and
    local backends; feed it to
    :func:`~repro.runtime.launcher.apply_process_result`.
    """
    from ..worker import initial_book

    policy = recovery if recovery is not None else RecoveryPolicy()
    plan = config.parallel
    world = plan.i * plan.j * plan.k
    if agents is not None and agents != plan.machines:
        raise ValueError(
            f"plan {plan.label()} needs exactly {plan.machines} agent(s), "
            f"got agents={agents}"
        )
    graph = trainer.graph
    topology = getattr(config.train, "topology", "star")

    if run_state is not None:
        target_iteration = int(run_state["target_iteration"])
        book = {
            "history": list(run_state["history"]),
            "recent": list(run_state["recent"]),
            "last_eval_sweeps": int(run_state["last_eval_sweeps"]),
        }
    else:
        epochs_eq = epochs if epochs is not None else config.train.epochs
        total_batch_visits = epochs_eq * trainer.num_batches
        visits_per_iteration = plan.j * plan.k
        iterations = max(1, total_batch_visits // visits_per_iteration)
        if max_iterations is not None:
            iterations = min(iterations, int(max_iterations))
        target_iteration = trainer._iteration + iterations
        book = initial_book()

    trace_dir = resolve_trace_dir(config)
    controller_tracer: Optional[Tracer] = None
    if trace_dir is not None:
        Path(trace_dir).mkdir(parents=True, exist_ok=True)
        controller_tracer = Tracer(
            rank=world,
            lane="supervisor",
            path=Path(trace_dir) / "trace-supervisor.jsonl",
        )
        controller_tracer.instant(
            "launch", world=world, machines=plan.machines, fabric=True
        )

    group_states = create_group_states(
        plan.k,
        num_nodes=graph.num_nodes,
        memory_dim=config.model.memory_dim,
        edge_dim=graph.edge_dim,
        comb=config.train.comb,
    )
    slab: Optional[CommitSlab] = None
    shadow_pairs: List[List[SharedGroupState]] = []
    launcher: Optional[FabricLauncher] = None
    try:
        for st, g in zip(group_states, trainer.groups):
            st.memory.copy_from(g.memory)
            st.mailbox.copy_from(g.mailbox)
        slab, shadow_pairs, shadow_specs = prepare_recovery_state(
            config, trainer, book=book
        )

        train_meta = {
            "target_iteration": target_iteration,
            "eval_every_sweeps": eval_every_sweeps,
            "verbose": verbose,
            "commit_every": policy.commit_every,
        }
        if trace_dir is not None:
            train_meta["trace_dir"] = str(trace_dir)

        bundle = {
            "config_dict": config.to_dict(),
            "shared_specs": [st.spec.to_dict() for st in group_states],
            "commit_spec": slab.to_dict(),
            "shadow_specs": shadow_specs,
            "train_meta": train_meta,
            "topology": topology,
            "collective_timeout": policy.collective_timeout,
            "timeout": timeout,
            "generation": 0,
        }

        checkpointer = None
        if checkpoint_dir is not None:
            checkpointer = SlabCheckpointer(
                directory=checkpoint_dir,
                config=config,
                trainer=trainer,
                slab=slab,
                shadow_pairs=shadow_pairs,
                target_iteration=target_iteration,
                start_iteration=trainer._iteration,
                every=checkpoint_every,
            )

        launcher = FabricLauncher(
            plan=plan,
            topology=topology,
            bundle=bundle,
            policy=policy,
            timeout=timeout,
            slab=slab,
            shadow_pairs=shadow_pairs,
            live_states=group_states,
            rendezvous=rendezvous or "127.0.0.1:0",
            managed_agents=managed_agents,
            tracer=controller_tracer,
            checkpointer=checkpointer,
        )
        results = launcher.run()
    except BaseException:
        destroy_states(group_states)
        raise
    finally:
        for pair in shadow_pairs:
            destroy_states(pair)
        if slab is not None:
            slab.close()
            slab.unlink()
        if trace_dir is not None:
            try:
                if controller_tracer is not None:
                    controller_tracer.instant("join")
                    controller_tracer.flush()
                merge_trace_dir(trace_dir)
            except Exception:  # pragma: no cover - defensive
                pass
    root = results[0]
    return root.meta, root.arrays, group_states
