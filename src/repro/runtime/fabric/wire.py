"""Fabric wire protocol: rank layout, link plans, socket wiring.

The fabric runs ``world = i × j × k`` ranks spread over ``machines`` host
agents.  This module is the *static* half of the subsystem: pure functions
from a :class:`~repro.parallel.config.ParallelConfig` to

* the *rank layout* — global rank ``m·(i·j) + r·i + s`` for memory group
  ``m``, epoch row ``r``, mini-batch shard ``s``; machine ``m // (k /
  machines)`` owns the group (memory never syncs across machines, §3.2.3);
* the *link plan* — which point-to-point sockets each rank must hold so
  its communicators exist: the world star (barriers/control), one slot
  star per ``(m, s)`` (the j epoch rows that share a gradient slot), one
  row star per ``(m, r)`` (the i shards that share a batch), the leader
  overlay (star/ring/tree — the cross-machine gradient allreduce), and the
  token chain that pipelines the canonical pass through a group's rows.

Wiring is deadlock-free without threads: every rank first *dials* all its
outbound links (higher rank dials lower; TCP's listen backlog completes
the handshakes whether or not the peer has reached ``accept`` yet, and
:func:`~repro.runtime.transport.connect_with_retry` rides out a listener
that has not bound yet), sends a ``link/hello`` identifying the link key
and generation, then sequentially accepts its known inbound count and
matches each connection by its hello.  Stale hellos from a torn-down
generation are closed and ignored.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..collectives import ChainCommunicator, Communicator, TreeCommunicator
from ..transport import Channel, RetryPolicy, SocketEndpoint, socket_channel

__all__ = [
    "Link",
    "accept_links",
    "build_comms",
    "coords_of",
    "dial_links",
    "link_plan",
    "machine_of",
    "open_listener",
    "rank_of",
    "ranks_of_machine",
]


# ---------------------------------------------------------------- layout
def rank_of(plan, m: int, r: int, s: int) -> int:
    """Global rank of (group ``m``, epoch row ``r``, shard ``s``)."""
    return m * plan.i * plan.j + r * plan.i + s


def coords_of(plan, rank: int) -> Tuple[int, int, int]:
    """Inverse of :func:`rank_of` → ``(m, r, s)``."""
    ij = plan.i * plan.j
    m, rem = divmod(rank, ij)
    r, s = divmod(rem, plan.i)
    return m, r, s


def machine_of(plan, rank: int) -> int:
    """The agent that owns ``rank`` (groups are machine-contiguous)."""
    return coords_of(plan, rank)[0] // plan.copies_per_machine


def ranks_of_machine(plan, machine: int) -> List[int]:
    """The contiguous global-rank slice agent ``machine`` spawns."""
    per = plan.copies_per_machine * plan.i * plan.j
    return list(range(machine * per, (machine + 1) * per))


# ------------------------------------------------------------- link plan
@dataclass(frozen=True)
class Link:
    """One point-to-point socket a rank must hold.

    ``key`` names the (communicator, edge) uniquely — both endpoints use
    it to pair the connection with its role; ``dial`` says whether this
    side initiates (higher global rank dials lower, uniformly, so each
    edge is dialed exactly once).
    """

    key: str
    peer: int
    dial: bool


def _edges(plan, topology: str) -> List[Tuple[str, int, int]]:
    """Every (key, rank_a, rank_b) socket edge of the fabric."""
    i, j, k = plan.i, plan.j, plan.k
    world = i * j * k
    edges: List[Tuple[str, int, int]] = []
    # world star (barriers, gather, control collectives): root = rank 0
    for x in range(1, world):
        edges.append((f"world:{x}", 0, x))
    # slot stars: the j epoch rows of (m, s); leader is row 0
    for m in range(k):
        for s in range(i):
            lead = rank_of(plan, m, 0, s)
            for r in range(1, j):
                edges.append((f"slot:{m}:{s}:{r}", lead, rank_of(plan, m, r, s)))
    # row stars: the i shards of (m, r); leader is shard 0
    for m in range(k):
        for r in range(j):
            lead = rank_of(plan, m, r, 0)
            for s in range(1, i):
                edges.append((f"row:{m}:{r}:{s}", lead, rank_of(plan, m, r, s)))
    # leader overlay: slot leaders ordered by block index b = m·i + s carry
    # the cross-machine gradient allreduce on the configured topology
    leaders = [
        rank_of(plan, b // i, 0, b % i) for b in range(i * k)
    ]
    nb = len(leaders)
    if topology == "ring":
        for b in range(nb - 1):
            edges.append((f"lead:{b + 1}", leaders[b], leaders[b + 1]))
    elif topology == "tree":
        for b in range(1, nb):
            edges.append((f"lead:{b}", leaders[(b - 1) // 2], leaders[b]))
    else:  # star
        for b in range(1, nb):
            edges.append((f"lead:{b}", leaders[0], leaders[b]))
    # canonical-pass token chain: row leader r-1 → row leader r inside a
    # group (the pipelining edge)
    for m in range(k):
        for r in range(1, j):
            edges.append(
                (f"tok:{m}:{r}", rank_of(plan, m, r - 1, 0), rank_of(plan, m, r, 0))
            )
    return edges


def link_plan(plan, topology: str) -> List[List[Link]]:
    """Per-rank link lists for the whole fabric (higher rank dials)."""
    world = plan.i * plan.j * plan.k
    plans: List[List[Link]] = [[] for _ in range(world)]
    for key, a, b in _edges(plan, topology):
        lo, hi = (a, b) if a < b else (b, a)
        plans[hi].append(Link(key=key, peer=lo, dial=True))
        plans[lo].append(Link(key=key, peer=hi, dial=False))
    return plans


# ---------------------------------------------------------------- wiring
def open_listener(host: str = "127.0.0.1", backlog: int = 64) -> socket.socket:
    """A listening socket on an ephemeral port (the rank's accept side)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, 0))
    sock.listen(backlog)
    return sock


def dial_links(
    links: List[Link],
    addrs: Dict[int, Tuple[str, int]],
    rank: int,
    generation: int,
    retry: Optional[RetryPolicy] = None,
    default_timeout: float = 120.0,
) -> Dict[str, Channel]:
    """Dial every outbound link and announce each with a ``link/hello``.

    No replies are awaited — TCP's backlog guarantees the dials complete
    even while the peers are still dialing their own outbound links, which
    is what makes single-threaded wiring deadlock-free.
    """
    channels: Dict[str, Channel] = {}
    try:
        for link in links:
            if not link.dial:
                continue
            host, port = addrs[link.peer]
            ch = socket_channel(host, port, retry, default_timeout=default_timeout)
            ch.send(
                "link/hello",
                {"key": link.key, "rank": rank, "generation": generation},
            )
            channels[link.key] = ch
    except BaseException:
        for ch in channels.values():
            ch.close()
        raise
    return channels


def accept_links(
    listener: socket.socket,
    links: List[Link],
    generation: int,
    handshake_timeout: float = 30.0,
    default_timeout: float = 120.0,
) -> Dict[str, Channel]:
    """Accept the known inbound link count, pairing each by its hello.

    Connections carrying an unknown key or a stale generation (a dial
    left over from a torn-down wiring round) are closed and skipped.
    """
    import time

    expected = {link.key for link in links if not link.dial}
    channels: Dict[str, Channel] = {}
    deadline = time.monotonic() + handshake_timeout
    try:
        while expected:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                from ..transport import TransportTimeout

                raise TransportTimeout(
                    f"still waiting for inbound links {sorted(expected)} "
                    f"after {handshake_timeout:.1f}s"
                )
            listener.settimeout(remaining)
            try:
                sock, _ = listener.accept()
            except socket.timeout:
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(None)
            ch = Channel(SocketEndpoint(sock), default_timeout=default_timeout)
            try:
                hello = ch.expect("link/hello", timeout=handshake_timeout)
            except Exception:
                ch.close()
                continue
            key = hello.meta.get("key")
            if hello.meta.get("generation") != generation or key not in expected:
                ch.close()  # stale generation or duplicate — drop it
                continue
            expected.discard(key)
            channels[key] = ch
    except BaseException:
        for ch in channels.values():
            ch.close()
        raise
    finally:
        listener.settimeout(None)
    return channels


# ---------------------------------------------------------- communicators
class RankComms:
    """Every communicator one fabric rank holds, built from its channels.

    * ``world`` — all ranks (star, root = rank 0): barriers and control.
    * ``slot`` — the j epoch rows of this rank's ``(m, s)`` slot (star,
      root = row 0): row-order gather of one-term partials + fan-out of
      the reduced gradient.
    * ``row`` — the i shards of this rank's ``(m, r)`` row (star, root =
      shard 0): the canonical pass's read barriers and ordered writeback.
    * ``leader`` — slot leaders only (row 0), ordered by block ``m·i+s``
      on the configured topology: the cross-machine gradient allreduce.
    * ``tok_prev`` / ``tok_next`` — the canonical-pass token chain edges.
    """

    def __init__(
        self,
        plan,
        topology: str,
        rank: int,
        channels: Dict[str, Channel],
    ) -> None:
        i, j, k = plan.i, plan.j, plan.k
        world = i * j * k
        m, r, s = coords_of(plan, rank)
        self.plan = plan
        self.rank = rank
        self._channels = dict(channels)

        if world == 1:
            self.world = Communicator(0, 1)
        elif rank == 0:
            self.world = Communicator(
                0, world,
                peer_channels=[channels[f"world:{x}"] for x in range(1, world)],
            )
        else:
            self.world = Communicator(
                rank, world, root_channel=channels[f"world:{rank}"]
            )

        if j == 1:
            self.slot = Communicator(0, 1)
        elif r == 0:
            self.slot = Communicator(
                0, j,
                peer_channels=[channels[f"slot:{m}:{s}:{x}"] for x in range(1, j)],
            )
        else:
            self.slot = Communicator(
                r, j, root_channel=channels[f"slot:{m}:{s}:{r}"]
            )

        if i == 1:
            self.row = Communicator(0, 1)
        elif s == 0:
            self.row = Communicator(
                0, i,
                peer_channels=[channels[f"row:{m}:{r}:{x}"] for x in range(1, i)],
            )
        else:
            self.row = Communicator(s, i, root_channel=channels[f"row:{m}:{r}:{s}"])

        self.leader = None
        if r == 0:
            b, nb = m * i + s, i * k
            if nb == 1:
                self.leader = Communicator(0, 1)
            elif topology == "ring":
                self.leader = ChainCommunicator(
                    b, nb,
                    prev_channel=channels.get(f"lead:{b}"),
                    next_channel=channels.get(f"lead:{b + 1}"),
                )
            elif topology == "tree":
                self.leader = TreeCommunicator(
                    b, nb,
                    parent_channel=channels.get(f"lead:{b}"),
                    child_channels=[
                        channels[f"lead:{c}"]
                        for c in (2 * b + 1, 2 * b + 2)
                        if c < nb
                    ],
                )
            elif b == 0:
                self.leader = Communicator(
                    0, nb,
                    peer_channels=[channels[f"lead:{x}"] for x in range(1, nb)],
                )
            else:
                self.leader = Communicator(
                    b, nb, root_channel=channels[f"lead:{b}"]
                )

        self.tok_prev = channels.get(f"tok:{m}:{r}") if (s == 0 and r > 0) else None
        self.tok_next = (
            channels.get(f"tok:{m}:{r + 1}") if (s == 0 and r < j - 1) else None
        )

    def close(self) -> None:
        """Close every underlying channel (cascades EOF to all peers —
        the fast park signal during a machine loss)."""
        for ch in self._channels.values():
            ch.close()


def build_comms(
    plan, topology: str, rank: int, channels: Dict[str, Channel]
) -> RankComms:
    return RankComms(plan, topology, rank, channels)
