"""Fabric rank entrypoint: the j-fan-out training loop over sockets.

A fabric rank is one ``(m, r, s)`` cell of the full ``i × j × k`` grid —
unlike the process backend's ``i × k`` ranks, which keep the ``j`` epoch
rows *inside* the rank, the fabric fans the rows out into real processes.
Each rank therefore runs **one** canonical-pass batch and **one** loss
term per sub-step; the block-level arithmetic the process rank does in a
private loop becomes wire collectives:

* **canonical pass** (sub-step 0) — the group's ``j`` rows are serialized
  by a token chain between row leaders (row ``r`` starts as soon as row
  ``r-1``'s write-back committed, pipelined against the later rows still
  working), and within a row the ``i`` shards run the process backend's
  exact barrier/read/forward/ordered-write-back sequence on their own row
  communicator.  Wrap detection is local arithmetic — every rank advances
  every cursor — so no extra coordination is needed.
* **gradient step** — a two-level reduction replaces the flat allreduce:
  the ``j`` rows of a gradient slot fold their one-term float64 partials
  at the slot leader **in row order** (the same ``+=`` loop a process
  rank runs over its cached block, so the slot total is bitwise the
  process rank's partial), the ``i·k`` slot leaders allreduce **in block
  order** on the configured star/ring/tree overlay (the same fold as
  ``reduce_partials``), and the total fans back out through the slot.
  Every rank then applies the identical reduced gradient to its own Adam
  replica — bitwise lockstep across machines without weight broadcasts.

Fault tolerance extends the process worker's park protocol to machine
loss: on any :class:`~repro.runtime.transport.TransportError` the rank
closes **all** its sockets first — cascading EOF through the fabric so
every survivor parks within one collective op instead of one timeout —
then reports ``parked`` on its controller channel and waits for the
``resume`` + fresh ``wire`` plan of the next generation.  A parent-death
watchdog turns a SIGKILLed agent into dead ranks immediately (daemonized
children do not outlive the machine they simulate).

Failpoints: ``worker.step`` (as in the process worker) plus
``fabric.machine`` — whose ``crash`` callback SIGKILLs the whole host
agent, the machine-loss drill ``differential_chaos_fit`` runs — and
``worker.finalize`` right after the end barrier (the finalization-window
drill; recovery replays finalization from the sealed final commit).
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
import traceback
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...api.config import ExperimentConfig
from ...models.tgn import TGN, DirectMemoryView
from ...nn import clip_grad_norm, use_fused
from ...obs import configure as obs_configure
from ...obs import flush as obs_flush
from ...obs import get_tracer
from ...obs import instant as obs_instant
from ...obs import span
from ...obs.metrics import phase_totals
from ...parallel.allreduce import TermGradAccumulator, load_reduced
from ...testing import failpoints
from ..sharedmem import CommitSlab, SharedGroupState, SharedStateSpec
from ..transport import Channel, RetryPolicy, TransportError, socket_channel
from .wire import Link, RankComms, accept_links, coords_of, dial_links, open_listener

__all__ = ["fabric_rank_shell"]


def _start_parent_watchdog(poll: float = 0.5) -> None:
    """Exit hard when the parent (the host agent) dies.

    A SIGKILLed agent cannot clean up its children; on Linux they reparent
    (getppid changes), which this thread converts into immediate death —
    so losing an agent really does take its whole machine down.
    """
    parent = os.getppid()

    def watch() -> None:
        while True:
            if os.getppid() != parent:
                os._exit(1)
            time.sleep(poll)

    threading.Thread(target=watch, daemon=True, name="ppid-watchdog").start()


def _attach_states(specs: List[dict]) -> List[SharedGroupState]:
    return [
        SharedGroupState(SharedStateSpec.from_dict(d), create=False) for d in specs
    ]


def _wire(
    ctrl: Channel,
    listener: socket.socket,
    rank: int,
    plan,
    topology: str,
    retry: RetryPolicy,
    collective_timeout: float,
    handshake_timeout: float,
) -> Tuple[RankComms, int]:
    """Receive the controller's link plan and build this generation's
    communicators (dial-all-then-accept, see :mod:`.wire`)."""
    frame = ctrl.expect("wire")
    generation = int(frame.meta["generation"])
    links = [
        Link(key=d["key"], peer=int(d["peer"]), dial=bool(d["dial"]))
        for d in frame.meta["links"]
    ]
    addrs = {
        int(d["peer"]): (d["host"], int(d["port"]))
        for d in frame.meta["links"]
        if d["dial"]
    }
    dialed = dial_links(
        links, addrs, rank, generation, retry, default_timeout=collective_timeout
    )
    try:
        accepted = accept_links(
            listener,
            links,
            generation,
            handshake_timeout=handshake_timeout,
            default_timeout=collective_timeout,
        )
    except BaseException:
        for ch in dialed.values():
            ch.close()
        raise
    return RankComms(plan, topology, rank, {**dialed, **accepted}), generation


def _park(
    ctrl: Channel, rank: int, exc: BaseException, iteration: int
) -> Tuple[int, bool]:
    """Report a fabric failure to the controller and await its verdict.

    Returns ``(generation, finalize)`` — ``finalize`` means the fault
    landed in the finalization window and the rank should replay
    finalization from the sealed final commit instead of re-wiring.
    """
    obs_instant("park", iteration=int(iteration), error=repr(exc))
    obs_flush()
    try:
        ctrl.send(
            "parked",
            meta={"rank": rank, "error": repr(exc), "iteration": int(iteration)},
        )
    except Exception:
        raise SystemExit(1) from exc
    while True:
        frame = ctrl.recv()  # channel default timeout bounds the wait
        if frame.tag == "resume":
            return int(frame.meta["generation"]), bool(
                frame.meta.get("finalize", False)
            )
        if frame.tag == "abort":
            raise SystemExit(1)


# ------------------------------------------------------------- entrypoint
def fabric_rank_shell(rank: int, bundle: dict) -> None:
    """Process target the host agent spawns for each of its ranks: dial
    the controller, run the rank, report ``result``/``error``."""
    _start_parent_watchdog()
    if bundle.get("clear_failpoints"):
        failpoints.neutralize()
    ctrl: Optional[Channel] = None
    try:
        host, port = bundle["controller"]
        retry = RetryPolicy(
            connect_timeout=float(bundle.get("connect_timeout", 20.0)),
            handshake_timeout=float(bundle.get("handshake_timeout", 30.0)),
        )
        ctrl = socket_channel(
            host, port, retry, default_timeout=float(bundle.get("timeout", 600.0))
        )
        meta, arrays = _rank_main(rank, bundle, ctrl, retry)
        ctrl.send("result", meta=meta or {}, arrays=arrays or {})
    except BaseException:  # noqa: BLE001 - every failure must reach the controller
        try:
            if ctrl is not None:
                ctrl.send(
                    "error",
                    meta={"rank": rank, "error": traceback.format_exc()},
                )
        except Exception:
            pass
        raise SystemExit(1)


def _rank_main(
    rank: int, bundle: dict, ctrl: Channel, retry: RetryPolicy
) -> Tuple[dict, Dict[str, np.ndarray]]:
    from ...train.distributed import DistTGLTrainer
    from ..launcher import decode_commit, encode_commit, load_trainer_state

    cfg = ExperimentConfig.from_dict(bundle["config_dict"])
    plan = cfg.parallel
    i, j, k = plan.i, plan.j, plan.k
    world = i * j * k
    m, r, s = coords_of(plan, rank)
    machine = m // plan.copies_per_machine
    topology = bundle.get("topology", "star")
    train_meta = bundle.get("train_meta") or {}
    agent_pid = int(bundle.get("agent_pid") or os.getppid())
    collective_timeout = float(bundle.get("collective_timeout", 120.0))
    handshake_timeout = float(bundle.get("handshake_timeout", 30.0))

    # trace lane carries the host id so the merged timeline shows which
    # machine every span ran on; the controller's measured clock offset
    # re-anchors wall-clock timestamps into the controller's timebase
    if train_meta.get("trace_dir"):
        obs_configure(
            train_meta["trace_dir"], rank=rank, lane=f"h{machine}.rank{rank}"
        )
        offset = float(bundle.get("clock_offset") or 0.0)
        tracer = get_tracer()
        if offset and tracer is not None:
            tracer.epoch_anchor += offset

    # ---- rendezvous: my listener address is how peers reach me
    listener = open_listener(bundle.get("bind_host", "127.0.0.1"))
    lhost, lport = listener.getsockname()
    ctrl.send(
        "hello/rank",
        meta={
            "rank": rank,
            "host": lhost,
            "port": lport,
            "pid": os.getpid(),
            "machine": machine,
            "generation": int(bundle.get("generation", 0)),
        },
    )

    dataset = cfg.build_dataset()
    trainer = DistTGLTrainer(dataset, cfg.parallel, cfg.trainer_spec(), rank=rank)
    spec = trainer.spec

    shared = SharedGroupState(
        SharedStateSpec.from_dict(bundle["shared_specs"][m]), create=False
    )
    own_group = trainer.groups[m]
    own_group.memory = shared.memory
    own_group.mailbox = shared.mailbox
    own_group.view = DirectMemoryView(shared.memory, shared.mailbox)
    for g in trainer.groups:
        if g.index != m:
            g.memory = None
            g.mailbox = None
            g.view = None
    view = own_group.view

    slab = CommitSlab.attach(bundle["commit_spec"])
    shadows: Optional[List[SharedGroupState]] = None
    if r == 0 and s == 0 and bundle.get("shadow_specs") is not None:
        shadows = _attach_states(bundle["shadow_specs"][m])

    def load_committed() -> dict:
        meta, arrays, book = decode_commit(slab.read())
        load_trainer_state(trainer, meta, arrays)
        return book

    book = load_committed()

    target = int(train_meta["target_iteration"])
    eval_every = int(train_meta.get("eval_every_sweeps", 1))
    verbose = bool(train_meta.get("verbose", False))
    commit_every = max(1, int(train_meta.get("commit_every", 1)))
    visits_per_iteration = j * k

    history: List[dict] = list(book["history"])
    recent: List[float] = list(book["recent"])
    last_eval_sweeps = int(book["last_eval_sweeps"])
    cache_entry: Optional[object] = None
    prev_batch = {g.index: g.prev_batch for g in trainer.groups}
    substep = 0
    blocks_done = 0
    sync_time = 0.0
    commit_work = 0.0
    comms: Optional[RankComms] = None
    generation = int(bundle.get("generation", 0))

    loop_start = time.perf_counter()
    cpu_start = time.process_time()

    def synced(phase, fn, *args, **kwargs):
        nonlocal sync_time
        tag = args[0] if args and isinstance(args[0], str) else kwargs.get("tag")
        span_args = {"cat": "sync"}
        if tag is not None:
            span_args["tag"] = tag
        with span(phase, **span_args):
            t0 = time.perf_counter()
            out = fn(*args, **kwargs)
            sync_time += time.perf_counter() - t0
        return out

    def kill_machine() -> None:
        # the fabric.machine drill: take the whole host down, not just this
        # rank — siblings die through their parent watchdogs
        try:
            os.kill(agent_pid, signal.SIGKILL)
        except OSError:
            pass

    def commit_window() -> None:
        nonlocal commit_work
        synced("barrier", comms.world.barrier, "commit/enter")
        slot = slab.next_slot
        t0 = time.perf_counter()
        with span("commit", cat="commit", slot=int(slot)):
            if shadows is not None:
                shadows[slot].memory.copy_from(shared.memory)
                shadows[slot].mailbox.copy_from(shared.mailbox)
            if rank == 0:
                for g in trainer.groups:
                    g.prev_batch = prev_batch[g.index]
                slab.write(
                    slot,
                    encode_commit(
                        trainer,
                        {
                            "history": history,
                            "recent": recent,
                            "last_eval_sweeps": last_eval_sweeps,
                        },
                    ),
                )
        commit_work += time.perf_counter() - t0
        iteration = trainer._iteration
        synced(
            "barrier",
            comms.world.barrier,
            "commit/seal",
            root_section=lambda: slab.seal(slot, iteration),
        )
        obs_flush()

    def wait_token(tag: str) -> None:
        comms.tok_prev.expect("tok/pass")

    def run_loop() -> None:
        nonlocal cache_entry, substep, blocks_done, last_eval_sweeps
        synced("barrier", comms.world.barrier, "start")
        while trainer._iteration < target:
            failpoints.fire(
                "worker.step",
                rank=rank,
                step=trainer._iteration,
                pipe_drop=comms.close,
            )
            failpoints.fire(
                "fabric.machine",
                rank=rank,
                step=trainer._iteration,
                crash=kill_machine,
            )
            with use_fused(spec.fused):
                if substep == 0:
                    # every rank advances every cursor (integer arithmetic),
                    # so wrap flags and commit metadata need no messages
                    blocks = {g.index: g.next_block(j) for g in trainer.groups}
                    own_block = blocks[m]
                    wraps = []
                    pb = prev_batch[m]
                    for b in own_block:
                        wraps.append(b <= pb)
                        pb = b
                    for g_idx, block in blocks.items():
                        prev_batch[g_idx] = block[-1]
                    b_idx = own_block[r]
                    wrap = wraps[r]

                    # pipelined canonical pass: this row may start as soon
                    # as the previous row's write-back has committed
                    if comms.tok_prev is not None and s == 0:
                        synced("barrier", wait_token, "row-token")

                    def reset_if_wrap():
                        if wrap:
                            shared.memory.reset()
                            shared.mailbox.reset()

                    synced(
                        "barrier",
                        comms.row.barrier,
                        "pre-read",
                        root_section=reset_if_wrap,
                    )
                    batch = trainer.loader.batch(b_idx)
                    shard = batch.split_local(i)[s] if i > 1 else batch
                    read = trainer._read_shard(shard, view)
                    synced("barrier", comms.row.barrier, "post-read")
                    entry, wb = trainer._forward_shard(read, batch.size, row=r)

                    def commit_wb():
                        nonlocal commit_work
                        t0 = time.perf_counter()
                        with span("writeback", cat="commit"):
                            if wb is not None:
                                TGN.apply_writeback(
                                    wb, shared.memory, shared.mailbox
                                )
                        commit_work += time.perf_counter() - t0

                    synced(
                        "serial", comms.row.serial_section, commit_wb,
                        tag="writeback",
                    )
                    if comms.tok_next is not None and s == 0:
                        comms.tok_next.send("tok/pass")
                    cache_entry = entry

                # ---- gradient step: ONE loss term on this rank, reduced in
                # two bitwise-preserving hops (row-order slot fold, then
                # block-order leader allreduce on the topology overlay)
                acc = TermGradAccumulator(trainer.optimizer.params)
                if cache_entry is not None:
                    trainer._accumulate_term(acc, cache_entry, r, substep)
                vec = acc.to_vector()
                part = (
                    synced("allreduce", comms.slot.reduce_to_root, vec)
                    if j > 1
                    else vec
                )
                if r == 0:
                    total = synced("allreduce", comms.leader.allreduce_sum, part)
                    if j > 1:
                        synced("allreduce", comms.slot.broadcast, {"vec": total})
                else:
                    total = synced("allreduce", comms.slot.broadcast).array("vec")
                global_loss = load_reduced(trainer.optimizer.params, total)
                clip_grad_norm(trainer.optimizer.params, spec.grad_clip)
                trainer.optimizer.step()
                recent.append(global_loss)

            substep = (substep + 1) % j
            trainer._iteration += 1

            group0 = trainer.groups[0]
            if group0.sweeps_completed >= last_eval_sweeps + eval_every:
                last_eval_sweeps = group0.sweeps_completed
                trainer._sweep_negative_offset += j
                synced("barrier", comms.world.barrier, "pre-eval")
                if rank == 0:
                    val = trainer._evaluate_split("val", warm_group=group0)
                    point = {
                        "iteration": trainer._iteration,
                        "edges_traversed": trainer._iteration
                        * visits_per_iteration
                        * trainer.global_batch,
                        "train_loss": float(np.mean(recent)),
                        "val_metric": val.metric,
                    }
                    history.append(point)
                    if verbose:
                        print(
                            f"[{plan.label()}|fabric w{world}] "
                            f"it={trainer._iteration} "
                            f"loss={point['train_loss']:.4f} "
                            f"val={val.metric:.4f}"
                        )
                recent.clear()
                synced("barrier", comms.world.barrier, "post-eval")

            if substep == 0:
                blocks_done += 1
                if blocks_done % commit_every == 0:
                    commit_window()

        # final seal before the end barrier: the finalization window
        # (trailing eval, bench gather, result report) replays from this
        # commit if a fault lands in it — see the process worker
        if slab.header[1] < trainer._iteration:
            commit_window()

        synced("barrier", comms.world.barrier, "end")
        # kill-after-end-barrier drill (hit-counter keyed)
        failpoints.fire("worker.finalize", rank=rank, pipe_drop=comms.close)

    # ---- supervised execution: wire / run / park / rewire.  A rank in
    # finalize-only mode (respawned into, or resumed inside, the
    # finalization window) skips wiring and collectives entirely — the
    # sealed final commit it loaded is the end-of-run state.
    bench = None
    finalize_only = bool(bundle.get("finalize_only"))
    while not finalize_only:
        try:
            if comms is None:
                comms, generation = _wire(
                    ctrl, listener, rank, plan, topology, retry,
                    collective_timeout, handshake_timeout,
                )
            run_loop()
            obs_flush()
            bench = comms.world.gather_meta(
                {
                    "rank": rank,
                    "host": machine,
                    "loop_s": time.perf_counter() - loop_start,
                    "sync_s": max(sync_time - commit_work, 0.0),
                    "cpu_s": time.process_time() - cpu_start,
                    "commit_s": commit_work,
                    "phases": phase_totals(),
                }
            )
            break
        except TransportError as exc:
            # close EVERYTHING first: the EOF cascade parks the rest of the
            # fabric within one collective op instead of one timeout
            if comms is not None:
                comms.close()
                comms = None
            generation, finalize = _park(
                ctrl, rank, exc, iteration=trainer._iteration
            )
            book = load_committed()
            history = list(book["history"])
            recent = list(book["recent"])
            last_eval_sweeps = int(book["last_eval_sweeps"])
            prev_batch = {g.index: g.prev_batch for g in trainer.groups}
            substep = 0
            blocks_done = 0
            cache_entry = None
            if finalize:
                # no collectives remain to rejoin (the controller sends no
                # wire plan): finish from the sealed state; bench is lost
                break

    if comms is not None:
        comms.close()
    listener.close()

    # ---- finalization (rank 0 only): trailing eval, test metric, state out
    if rank != 0:
        shared.close()
        obs_flush()
        return {"rank": rank, "ok": True}, {}

    if not history:
        val = trainer._evaluate_split("val", warm_group=trainer.groups[0])
        history.append(
            {
                "iteration": trainer._iteration,
                "edges_traversed": trainer._iteration
                * visits_per_iteration
                * trainer.global_batch,
                "train_loss": float(np.mean(recent)) if recent else float("nan"),
                "val_metric": val.metric,
            }
        )
    vals = [h["val_metric"] for h in history]
    best_idx = int(np.argmax(vals))
    test = trainer._evaluate_split("test", warm_group=trainer.groups[0])

    from ..launcher import snapshot_trainer_state

    for g in trainer.groups:
        g.prev_batch = prev_batch[g.index]
    snap = snapshot_trainer_state(trainer)
    meta = {
        **snap["meta"],
        "rank": 0,
        "ok": True,
        "config_label": plan.label(),
        "history": history,
        "best_val": vals[best_idx],
        "iterations_to_best": history[best_idx]["iteration"],
        "iterations_run": trainer._iteration,
        "test_metric": test.metric,
        "bench": bench,
        "world": world,
        "machines": plan.machines,
        "topology": topology,
    }
    shared.close()
    obs_flush()
    return meta, snap["arrays"]
