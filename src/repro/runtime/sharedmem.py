"""Node-memory and mailbox state in ``multiprocessing.shared_memory``.

Memory parallelism (§3.2.3) gives each of the ``k`` groups one node-memory
copy that its ``i`` mini-batch-parallel trainers read and write together.
In the process runtime those trainers are separate OS processes, so the
group's :class:`~repro.memory.node_memory.NodeMemory` and
:class:`~repro.memory.mailbox.Mailbox` live in a shared-memory segment: the
``i`` readers of one group map **one** array instead of holding ``i``
private copies, exactly the paper's memory-parallel read path (and the
serving runtime's replica fan-out shares a single serving state the same
way).

One :class:`SharedGroupState` describes one group's segment: a fixed header
of array extents, then the five state arrays packed back to back.  The
creator (the launcher, or the serving front door) owns the segment's
lifetime; workers attach by name and rebind the arrays of ordinary
``NodeMemory`` / ``Mailbox`` instances onto the mapped views, so every
existing operation — reads-as-copies, fancy-assignment writes, COMB
deposits, ``clone()`` — works unchanged on shared state.

Write ordering is *not* this module's job: the runtime sequences writers
through :meth:`repro.runtime.collectives.Communicator.serial_section`
(training) or the front door's drain protocol (serving).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Tuple

import numpy as np

from ..memory.mailbox import Mailbox
from ..memory.node_memory import NodeMemory


def _layout(
    num_nodes: int, memory_dim: int, edge_dim: int
) -> List[Tuple[str, Tuple[int, ...], np.dtype]]:
    mail_dim = 2 * memory_dim + edge_dim
    return [
        ("memory", (num_nodes, memory_dim), np.dtype(np.float32)),
        ("last_update", (num_nodes,), np.dtype(np.float64)),
        ("mail", (num_nodes, mail_dim), np.dtype(np.float32)),
        ("mail_time", (num_nodes,), np.dtype(np.float64)),
        ("has_mail", (num_nodes,), np.dtype(bool)),
    ]


@dataclass(frozen=True)
class SharedStateSpec:
    """Everything a worker needs to attach: segment name + array extents."""

    name: str
    num_nodes: int
    memory_dim: int
    edge_dim: int
    comb: str = "recent"

    @property
    def nbytes(self) -> int:
        return sum(
            int(np.prod(shape)) * dtype.itemsize
            for _, shape, dtype in _layout(self.num_nodes, self.memory_dim, self.edge_dim)
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "memory_dim": self.memory_dim,
            "edge_dim": self.edge_dim,
            "comb": self.comb,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SharedStateSpec":
        return cls(**data)


class SharedGroupState:
    """One group's (memory, mailbox) mapped onto a shared segment.

    ``create=True`` allocates and zeroes the segment (the owner must call
    :meth:`unlink` eventually); ``create=False`` attaches to an existing
    one by name.  Either way, :attr:`memory` and :attr:`mailbox` are real
    ``NodeMemory`` / ``Mailbox`` objects whose arrays alias the segment.
    """

    def __init__(self, spec: SharedStateSpec, create: bool) -> None:
        self.spec = spec
        self.owner = create
        if create:
            self.shm = shared_memory.SharedMemory(
                create=True, size=spec.nbytes, name=spec.name
            )
        else:
            self.shm = shared_memory.SharedMemory(name=spec.name)
            if self.shm.size < spec.nbytes:
                self.close()
                raise ValueError(
                    f"segment {spec.name!r} holds {self.shm.size} bytes, "
                    f"spec needs {spec.nbytes}"
                )

        views = {}
        offset = 0
        for name, shape, dtype in _layout(
            spec.num_nodes, spec.memory_dim, spec.edge_dim
        ):
            nbytes = int(np.prod(shape)) * dtype.itemsize
            views[name] = np.ndarray(
                shape, dtype=dtype, buffer=self.shm.buf, offset=offset
            )
            offset += nbytes

        # ordinary state objects, arrays rebound onto the mapped views: all
        # NodeMemory/Mailbox operations then act on shared state directly
        self.memory = NodeMemory(spec.num_nodes, spec.memory_dim)
        self.memory.memory = views["memory"]
        self.memory.last_update = views["last_update"]
        self.mailbox = Mailbox(
            spec.num_nodes, spec.memory_dim, edge_dim=spec.edge_dim, comb=spec.comb
        )
        self.mailbox.mail = views["mail"]
        self.mailbox.mail_time = views["mail_time"]
        self.mailbox.has_mail = views["has_mail"]
        if create:
            self.memory.reset()
            self.mailbox.reset()

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Drop this process's mapping (arrays become invalid)."""
        # release the numpy views before closing the mmap, or close() raises;
        # a still-referenced view elsewhere makes close a no-op until the
        # process exits, which is safe (the kernel reclaims the mapping)
        self.memory = None
        self.mailbox = None
        try:
            self.shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after every close)."""
        self.shm.unlink()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SharedGroupState({self.spec.name!r}, V={self.spec.num_nodes}, "
            f"d={self.spec.memory_dim}, owner={self.owner})"
        )


def create_group_states(
    num_groups: int,
    num_nodes: int,
    memory_dim: int,
    edge_dim: int,
    comb: str = "recent",
    name_prefix: str = "repro-rt",
) -> List[SharedGroupState]:
    """Allocate one shared segment per memory group (launcher side).

    Segment names carry the pid plus a random suffix via the stdlib's
    namespace when ``name=None`` would; we build explicit names so workers
    can attach from a spec dict.
    """
    states = []
    token = np.random.SeedSequence().entropy % (1 << 32)
    for g in range(num_groups):
        spec = SharedStateSpec(
            name=f"{name_prefix}-{token:08x}-g{g}",
            num_nodes=num_nodes,
            memory_dim=memory_dim,
            edge_dim=edge_dim,
            comb=comb,
        )
        states.append(SharedGroupState(spec, create=True))
    return states
