"""Node-memory and mailbox state in ``multiprocessing.shared_memory``.

Memory parallelism (§3.2.3) gives each of the ``k`` groups one node-memory
copy that its ``i`` mini-batch-parallel trainers read and write together.
In the process runtime those trainers are separate OS processes, so the
group's :class:`~repro.memory.node_memory.NodeMemory` and
:class:`~repro.memory.mailbox.Mailbox` live in a shared-memory segment: the
``i`` readers of one group map **one** array instead of holding ``i``
private copies, exactly the paper's memory-parallel read path (and the
serving runtime's replica fan-out shares a single serving state the same
way).

One :class:`SharedGroupState` describes one group's segment: a fixed header
of array extents, then the five state arrays packed back to back.  The
creator (the launcher, or the serving front door) owns the segment's
lifetime; workers attach by name and rebind the arrays of ordinary
``NodeMemory`` / ``Mailbox`` instances onto the mapped views, so every
existing operation — reads-as-copies, fancy-assignment writes, COMB
deposits, ``clone()`` — works unchanged on shared state.

Write ordering is *not* this module's job: the runtime sequences writers
through :meth:`repro.runtime.collectives.Communicator.serial_section`
(training) or the front door's drain protocol (serving).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Tuple

import numpy as np

from ..memory.mailbox import Mailbox
from ..memory.node_memory import NodeMemory


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    Attaching registers the segment with the *attacher's* tracker, which
    unlinks it when the attacher exits — correct only for the creator.
    The fabric's host agents are independent processes with their own
    trackers, so an agent's orderly shutdown must not destroy segments the
    controller still owns; and mp-spawned workers *share* the creator's
    tracker, where an unregister-after-attach would double-remove the
    creator's cache entry (the tracker daemon logs KeyError tracebacks).
    Suppressing the registration during attach covers both without
    touching the creator's own entry.  (Python 3.13's
    ``SharedMemory(track=False)`` is this, spelled officially.)
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _layout(
    num_nodes: int, memory_dim: int, edge_dim: int
) -> List[Tuple[str, Tuple[int, ...], np.dtype]]:
    mail_dim = 2 * memory_dim + edge_dim
    return [
        ("memory", (num_nodes, memory_dim), np.dtype(np.float32)),
        ("last_update", (num_nodes,), np.dtype(np.float64)),
        ("mail", (num_nodes, mail_dim), np.dtype(np.float32)),
        ("mail_time", (num_nodes,), np.dtype(np.float64)),
        ("has_mail", (num_nodes,), np.dtype(bool)),
    ]


@dataclass(frozen=True)
class SharedStateSpec:
    """Everything a worker needs to attach: segment name + array extents."""

    name: str
    num_nodes: int
    memory_dim: int
    edge_dim: int
    comb: str = "recent"

    @property
    def nbytes(self) -> int:
        return sum(
            int(np.prod(shape)) * dtype.itemsize
            for _, shape, dtype in _layout(self.num_nodes, self.memory_dim, self.edge_dim)
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "memory_dim": self.memory_dim,
            "edge_dim": self.edge_dim,
            "comb": self.comb,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SharedStateSpec":
        return cls(**data)


class SharedGroupState:
    """One group's (memory, mailbox) mapped onto a shared segment.

    ``create=True`` allocates and zeroes the segment (the owner must call
    :meth:`unlink` eventually); ``create=False`` attaches to an existing
    one by name.  Either way, :attr:`memory` and :attr:`mailbox` are real
    ``NodeMemory`` / ``Mailbox`` objects whose arrays alias the segment.
    """

    def __init__(self, spec: SharedStateSpec, create: bool) -> None:
        self.spec = spec
        self.owner = create
        if create:
            self.shm = shared_memory.SharedMemory(
                create=True, size=spec.nbytes, name=spec.name
            )
        else:
            self.shm = _attach_untracked(spec.name)
            if self.shm.size < spec.nbytes:
                self.close()
                raise ValueError(
                    f"segment {spec.name!r} holds {self.shm.size} bytes, "
                    f"spec needs {spec.nbytes}"
                )

        views = {}
        offset = 0
        for name, shape, dtype in _layout(
            spec.num_nodes, spec.memory_dim, spec.edge_dim
        ):
            nbytes = int(np.prod(shape)) * dtype.itemsize
            views[name] = np.ndarray(
                shape, dtype=dtype, buffer=self.shm.buf, offset=offset
            )
            offset += nbytes

        # ordinary state objects, arrays rebound onto the mapped views: all
        # NodeMemory/Mailbox operations then act on shared state directly
        self.memory = NodeMemory(spec.num_nodes, spec.memory_dim)
        self.memory.memory = views["memory"]
        self.memory.last_update = views["last_update"]
        self.mailbox = Mailbox(
            spec.num_nodes, spec.memory_dim, edge_dim=spec.edge_dim, comb=spec.comb
        )
        self.mailbox.mail = views["mail"]
        self.mailbox.mail_time = views["mail_time"]
        self.mailbox.has_mail = views["has_mail"]
        if create:
            self.memory.reset()
            self.mailbox.reset()

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Drop this process's mapping (arrays become invalid)."""
        # release the numpy views before closing the mmap, or close() raises;
        # a still-referenced view elsewhere makes close a no-op until the
        # process exits, which is safe (the kernel reclaims the mapping)
        self.memory = None
        self.mailbox = None
        try:
            self.shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after every close)."""
        self.shm.unlink()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SharedGroupState({self.spec.name!r}, V={self.spec.num_nodes}, "
            f"d={self.spec.memory_dim}, owner={self.owner})"
        )


def create_group_states(
    num_groups: int,
    num_nodes: int,
    memory_dim: int,
    edge_dim: int,
    comb: str = "recent",
    name_prefix: str = "repro-rt",
) -> List[SharedGroupState]:
    """Allocate one shared segment per memory group (launcher side).

    Segment names carry the pid plus a random suffix via the stdlib's
    namespace when ``name=None`` would; we build explicit names so workers
    can attach from a spec dict.  Allocation is all-or-nothing: if segment
    ``g`` fails to allocate, segments ``0..g-1`` are closed and unlinked
    before the error propagates — a half-built fleet must not leave
    ``/dev/shm`` residue behind.
    """
    states: List[SharedGroupState] = []
    token = np.random.SeedSequence().entropy % (1 << 32)
    try:
        for g in range(num_groups):
            spec = SharedStateSpec(
                name=f"{name_prefix}-{token:08x}-g{g}",
                num_nodes=num_nodes,
                memory_dim=memory_dim,
                edge_dim=edge_dim,
                comb=comb,
            )
            states.append(SharedGroupState(spec, create=True))
    except BaseException:
        destroy_states(states)
        raise
    return states


def destroy_states(states: List[SharedGroupState]) -> None:
    """Close + unlink a list of owned states, ignoring already-gone ones."""
    for st in states:
        try:
            st.close()
        except Exception:
            pass
        try:
            st.unlink()
        except FileNotFoundError:
            pass


# --------------------------------------------------------------- commit slab
class CommitSlab:
    """Double-buffered commit blob in one shared segment.

    The elastic runtime's rollback anchor: at every committed step boundary
    rank 0 serializes the whole resumable run (trainer snapshot + loop
    bookkeeping) into the *inactive* slot, and only after every rank's
    shadow copies are also durable does the seal flip the header to that
    slot.  A crash at any instant therefore leaves the header pointing at a
    complete, consistent blob: either the previous commit (flip never ran)
    or the new one (flip ran — and the flip only runs with the fleet idle
    at a barrier, after all writes).

    Layout: ``header = (valid_slot int64, iteration int64)`` then two slots
    of ``capacity`` bytes, each ``(length int64, payload)``.  ``valid_slot``
    is ``-1`` until the first seal (the launcher seals slot 0 with the
    initial state before spawning, so recovery always has an anchor).
    """

    _HEADER = struct.Struct("<qq")
    _SLOT_LEN = struct.Struct("<q")

    def __init__(self, name: str, capacity: int, create: bool) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = int(capacity)
        self.owner = create
        nbytes = self._HEADER.size + 2 * (self._SLOT_LEN.size + self.capacity)
        if create:
            self.shm = shared_memory.SharedMemory(create=True, size=nbytes, name=name)
            self._write_header(-1, -1)
        else:
            self.shm = _attach_untracked(name)
            if self.shm.size < nbytes:
                self.shm.close()
                raise ValueError(
                    f"commit slab {name!r} holds {self.shm.size} bytes, "
                    f"needs {nbytes}"
                )

    # ------------------------------------------------------------- wire spec
    def to_dict(self) -> dict:
        return {"name": self.name, "capacity": self.capacity}

    @classmethod
    def attach(cls, spec: dict) -> "CommitSlab":
        return cls(spec["name"], spec["capacity"], create=False)

    # ----------------------------------------------------------------- slots
    def _slot_offset(self, slot: int) -> int:
        if slot not in (0, 1):
            raise ValueError(f"slot must be 0 or 1, got {slot}")
        return self._HEADER.size + slot * (self._SLOT_LEN.size + self.capacity)

    def _write_header(self, slot: int, iteration: int) -> None:
        self._HEADER.pack_into(self.shm.buf, 0, slot, iteration)

    @property
    def header(self) -> Tuple[int, int]:
        """(valid_slot, iteration) — ``(-1, -1)`` before the first seal."""
        slot, iteration = self._HEADER.unpack_from(self.shm.buf, 0)
        return int(slot), int(iteration)

    @property
    def next_slot(self) -> int:
        """The inactive slot the next commit must write (0 before any seal)."""
        slot, _ = self.header
        return 0 if slot < 0 else 1 - slot

    def write(self, slot: int, payload: bytes) -> None:
        """Write ``payload`` into ``slot`` (does NOT make it current)."""
        if len(payload) > self.capacity:
            raise RuntimeError(
                f"commit blob of {len(payload)} bytes exceeds slab capacity "
                f"{self.capacity}; the run state grew past its headroom"
            )
        off = self._slot_offset(slot)
        self._SLOT_LEN.pack_into(self.shm.buf, off, len(payload))
        start = off + self._SLOT_LEN.size
        self.shm.buf[start : start + len(payload)] = payload

    def seal(self, slot: int, iteration: int) -> None:
        """Flip the header to ``slot`` — the commit's atomic last step."""
        self._write_header(slot, iteration)

    def read(self, slot: "int | None" = None) -> bytes:
        """The payload of ``slot`` (default: the sealed slot)."""
        if slot is None:
            slot, _ = self.header
            if slot < 0:
                raise RuntimeError("commit slab was never sealed")
        off = self._slot_offset(slot)
        (length,) = self._SLOT_LEN.unpack_from(self.shm.buf, off)
        if not 0 <= length <= self.capacity:
            raise RuntimeError(f"commit slab slot {slot} holds a torn length {length}")
        start = off + self._SLOT_LEN.size
        return bytes(self.shm.buf[start : start + length])

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - a view still alive elsewhere
            pass

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:  # pragma: no cover
        slot, iteration = self.header
        return (
            f"CommitSlab({self.name!r}, capacity={self.capacity}, "
            f"slot={slot}, iteration={iteration})"
        )
