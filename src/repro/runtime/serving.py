"""Process-replica serving: k worker processes over one shared serving state.

The threaded :class:`~repro.serve.cluster.ServingCluster` multiplies
queueing capacity with k replica engines, but they share one mutable model
object, so a single lock serializes all compute.  The process cluster
removes that ceiling: each replica is an OS process with its **own** model
copy (true compute parallelism on multi-core hosts), while the node
memory + mailbox live in one shared-memory segment
(:mod:`repro.runtime.sharedmem`) — §3.2.3's "k readers of one state"
applied to serving.  Because the state is shared, the event stream is
folded **once** (by the fold leader, worker 0) instead of k times; every
replica reads the same bytes the threaded replicas would each have
computed, so predictions are bit-identical to the threaded cluster
whenever the micro-batch compositions match (composition is the only
arithmetic variable: a deadline flush that splits a batch differently
changes the dedup set, which can move scores by an ulp on either cluster
kind — that is a property of deadline batching, not of the process
topology).

Protocol (all frames over the worker's control channel):

* reads — ``rank`` / ``predict`` requests are routed round-robin or
  least-loaded, queue into the worker's own
  :class:`~repro.serve.batcher.MicroBatcher` (micro-batching semantics
  identical to the threaded path) and come back as ``result`` frames that
  resolve parent-side :class:`ProcessPendingResult` handles.
* writes — :meth:`ProcessServingCluster.ingest` runs a two-phase commit:
  **drain** (every worker flushes its queued reads and acks, so no flush
  can race the fold) then **fold/append** (worker 0 folds the events into
  the shared state and its graph; the others append to their graph copies
  only).  This is the cross-process equivalent of the threaded cluster's
  engine lock, held exactly as long as an ingest needs it.

Workers rebuild their serving graph from the declarative config (same
"reconstruct from description" contract as the training runtime) and
receive only the trained weight blobs over the wire.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..api.config import ExperimentConfig
from ..serve.ingest import EventLog, read_snapshot, write_snapshot
from .launcher import DEFAULT_TIMEOUT, ProcessGroup
from .sharedmem import SharedGroupState, SharedStateSpec, create_group_states
from .transport import TransportError, TransportTimeout


# ----------------------------------------------------------------- worker
def serve_worker(
    rank: int,
    channel,
    *,
    config_dict: dict,
    shared_spec: dict,
    serve_meta: dict,
):
    """One serving replica: rebuild graph + model, serve until ``stop``."""
    from ..api.registry import MODELS
    from ..infer.engine import InferenceEngine
    from ..models.decoders import LinkPredictor
    from ..models.tgn import DirectMemoryView, TGNConfig
    from ..serve.batcher import MicroBatcher

    cfg = ExperimentConfig.from_dict(config_dict)
    dataset = cfg.build_dataset()
    split = dataset.graph.chronological_split()
    graph = dataset.graph.slice_events(split.train)

    mc = cfg.model
    # same rebuild path as the trainer: the model key resolves through the
    # repro.api registry, so plug-in models serve like the builtin
    model = MODELS.get(mc.model)(
        TGNConfig(
            num_nodes=graph.num_nodes,
            memory_dim=mc.memory_dim,
            time_dim=mc.time_dim,
            embed_dim=mc.embed_dim,
            edge_dim=graph.edge_dim,
            static_dim=mc.static_dim,
            num_neighbors=mc.num_neighbors,
            num_heads=mc.num_heads,
            updater=mc.updater,
            seed=cfg.train.seed,
        )
    )
    decoder = LinkPredictor(mc.embed_dim, rng=np.random.default_rng(cfg.train.seed + 1))
    model.from_bytes(serve_meta.pop("_model_blob"))
    decoder.from_bytes(serve_meta.pop("_decoder_blob"))
    static = serve_meta.pop("_static_table", None)
    if static is not None:
        model.attach_static_memory(static)

    shared = SharedGroupState(SharedStateSpec.from_dict(shared_spec), create=False)
    engine = InferenceEngine(
        model,
        graph,
        decoder=decoder,
        dedup=bool(serve_meta["dedup"]),
        memoize_time=bool(serve_meta["memoize_time"]),
        append_on_observe=False,
    )
    # replica engines serve from the one shared state instead of private copies
    engine.memory = shared.memory
    engine.mailbox = shared.mailbox
    engine.view = DirectMemoryView(shared.memory, shared.mailbox)

    batcher = MicroBatcher(
        engine,
        max_batch_pairs=int(serve_meta["max_batch_pairs"]),
        max_delay=float(serve_meta["max_delay"]),
    )
    pending: Dict[int, object] = {}
    max_delay = float(serve_meta["max_delay"])
    idle_wait = min(max(max_delay / 2, 1e-3), 0.05)

    def sweep() -> None:
        done = [rid for rid, res in pending.items() if res.done]
        for rid in done:
            res = pending.pop(rid)
            try:
                channel.send(
                    "result",
                    meta={"req_id": rid, "latency": res.latency},
                    arrays={"scores": np.asarray(res.value)},
                )
            except Exception as exc:  # noqa: BLE001 - value may carry the error
                channel.send("req_error", meta={"req_id": rid, "error": repr(exc)})

    channel.send("ready", meta={"rank": rank})
    requests = 0
    while True:
        if not channel.poll(idle_wait):
            batcher.poll()
            sweep()
            continue
        frame = channel.recv(timeout=5.0)
        # deadline-check on *every* loop turn: sustained sub-threshold
        # traffic must not starve the max_delay flush trigger (the parent
        # cannot drive worker-side polls the way a threaded waiter can)
        batcher.poll()
        if frame.tag == "rank":
            requests += 1
            pending[frame.meta["req_id"]] = batcher.submit_rank(
                int(frame.meta["src"]),
                frame.array("candidates"),
                float(frame.meta["at_time"]),
            )
        elif frame.tag == "predict":
            requests += 1
            pending[frame.meta["req_id"]] = batcher.submit_predict(
                frame.array("src"), frame.array("dst"), frame.array("times")
            )
        elif frame.tag == "drain":
            batcher.flush()
            sweep()
            channel.send("drain_ack", meta={"rank": rank})
            continue
        elif frame.tag == "fold":
            src, dst = frame.array("src"), frame.array("dst")
            times = frame.array("times")
            ef = frame.arrays.get("edge_feats")
            # the fold leader advances the shared state exactly once for the
            # whole fleet; everyone (leader included) appends to their graph
            # copy so samplers keep seeing fresh neighborhoods
            if frame.meta["fold_state"]:
                engine.observe(src, dst, times, edge_feats=ef)
            graph.append_events(src, dst, times, ef)
            channel.send("fold_ack", meta={"rank": rank, "events": len(src)})
            continue
        elif frame.tag == "flush":
            batcher.flush()
            sweep()
            channel.send("flush_ack", meta={"rank": rank})
            continue
        elif frame.tag == "stats":
            s = engine.stats
            channel.send(
                "stats_ack",
                meta={
                    "rank": rank,
                    "requests": requests,
                    "queries": s.queries,
                    "unique_queries": s.unique_queries,
                    "time_encodings_requested": s.time_encodings_requested,
                    "time_encodings_computed": s.time_encodings_computed,
                    "flushes": batcher.stats.flushes,
                    "mean_batch_pairs": batcher.stats.mean_batch_pairs,
                },
            )
            continue
        elif frame.tag == "stop":
            batcher.flush()
            sweep()
            break
        else:
            raise TransportError(f"serve worker got unknown frame {frame.tag!r}")
        # size-triggered flushes may have completed requests synchronously
        sweep()

    shared.close()
    return {"rank": rank, "ok": True, "requests": requests}, {}


# ------------------------------------------------------------------ parent
class ProcessPendingResult:
    """Parent-side handle for one routed request (mirrors
    :class:`repro.serve.batcher.PendingResult`'s wait/value/done surface)."""

    def __init__(self, link: "_ReplicaLink", req_id: int, submitted_at: float) -> None:
        self._link = link
        self._event = threading.Event()
        self._value: Optional[np.ndarray] = None
        self._error: Optional[str] = None
        self.submitted_at = submitted_at
        self.completed_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def value(self) -> np.ndarray:
        if not self.done:
            raise RuntimeError("request not completed yet; call wait()")
        if self._error is not None:
            raise RuntimeError(self._error)
        return self._value

    def wait(self, timeout: Optional[float] = None) -> np.ndarray:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._event.is_set():
            self._link.pump(0.05)
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("request not completed within timeout")
        return self.value

    def _fulfill(self, value: np.ndarray, error: Optional[str]) -> None:
        self._value = value
        self._error = error
        self.completed_at = time.perf_counter()
        self._event.set()


class _ReplicaLink:
    """Parent's view of one serve worker: channel + outstanding requests."""

    def __init__(self, index: int, channel) -> None:
        self.index = index
        self.channel = channel
        self.lock = threading.RLock()
        self.outstanding: Dict[int, ProcessPendingResult] = {}
        self.acks: Dict[str, List[dict]] = {}

    @property
    def load(self) -> int:
        return len(self.outstanding)

    def pump(self, timeout: float = 0.0) -> None:
        """Dispatch any frames the worker sent.

        Results fulfill their handles; everything else (acks, ready) lands
        in :attr:`acks` for whoever is waiting on it — concurrent pumpers
        (a waiting client, an in-flight ingest) can therefore never steal
        each other's frames.
        """
        with self.lock:
            while self.channel.poll(timeout):
                frame = self.channel.recv(timeout=1.0)
                if frame.tag == "result":
                    res = self.outstanding.pop(frame.meta["req_id"], None)
                    if res is not None:
                        res._fulfill(frame.array("scores"), None)
                elif frame.tag == "req_error":
                    res = self.outstanding.pop(frame.meta["req_id"], None)
                    if res is not None:
                        res._fulfill(None, frame.meta.get("error", "request failed"))
                elif frame.tag == "error":
                    raise TransportError(
                        f"serve worker {self.index} failed: "
                        f"{frame.meta.get('error', 'unknown')}"
                    )
                else:
                    self.acks.setdefault(frame.tag, []).append(dict(frame.meta))
                timeout = 0.0  # only the first poll blocks

    def await_ack(self, tag: str, timeout: float) -> dict:
        """Pump until one ``tag`` frame arrives; returns its metadata."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self.lock:
                queued = self.acks.get(tag)
                if queued:
                    return queued.pop(0)
            self.pump(0.05)
        raise TransportTimeout(f"worker {self.index}: no {tag!r} within {timeout:.0f}s")


@dataclass
class ProcessClusterStats:
    """Front-door accounting (mirrors the threaded ``ClusterStats``)."""

    submitted: int = 0
    shed: int = 0
    ingested_events: int = 0
    routed: List[int] = field(default_factory=list)

    @property
    def admitted(self) -> int:
        return self.submitted - self.shed


class ProcessServingCluster:
    """k process replicas over one shared serving state, one front door.

    Built by ``Session.serve(process_replicas=True)``.  Use as a context
    manager (or call :meth:`shutdown`) — the replicas are real processes
    and the shared segment must be unlinked.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        serve_graph,
        model,
        decoder,
        k: int = 2,
        *,
        policy: str = "round_robin",
        admission_limit: Optional[int] = None,
        max_batch_pairs: int = 256,
        max_delay: float = 2e-3,
        dedup: bool = True,
        memoize_time: bool = True,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        from ..api.registry import ROUTERS

        if policy not in ROUTERS:
            raise ValueError(
                f"unknown policy {policy!r}; choose one of {list(ROUTERS.available())}"
            )
        if admission_limit is not None and admission_limit < 1:
            raise ValueError("admission_limit must be positive (or None)")
        self._router = ROUTERS.get(policy)
        self.policy = policy
        self.admission_limit = admission_limit
        self.graph = serve_graph
        # the front door keeps the WAL (batch boundaries included), so the
        # process cluster snapshots/restores exactly like the threaded one
        self.wal = EventLog(edge_dim=serve_graph.edge_dim)
        self.timeout = timeout
        self._lock = threading.RLock()
        self._rr = 0
        self._req_counter = 0
        self._closed = False
        self.stats = ProcessClusterStats(routed=[0] * k)

        (self._state,) = create_group_states(
            1,
            num_nodes=serve_graph.num_nodes,
            memory_dim=model.config.memory_dim,
            edge_dim=serve_graph.edge_dim,
            name_prefix="repro-serve",
        )
        try:
            # spawn arguments travel through the multiprocessing pickler, so
            # the weight blobs ride along as plain bytes (frames are for live
            # traffic)
            serve_meta = {
                "max_batch_pairs": max_batch_pairs,
                "max_delay": max_delay,
                "dedup": dedup,
                "memoize_time": memoize_time,
                "_model_blob": model.to_bytes(),
                "_decoder_blob": decoder.to_bytes(),
                "_static_table": (
                    model._static_table.copy() if model.has_static_memory else None
                ),
            }
            config_dict = config.to_dict()
            self._group = ProcessGroup(
                serve_worker,
                [
                    {
                        "config_dict": config_dict,
                        "shared_spec": self._state.spec.to_dict(),
                        "serve_meta": serve_meta,
                    }
                    for _ in range(k)
                ],
                name="repro-serve",
                timeout=timeout,
            )
            try:
                self._group.start()
                self.replicas = [
                    _ReplicaLink(idx, ch)
                    for idx, ch in enumerate(self._group.channels)
                ]
                for link in self.replicas:
                    link.await_ack("ready", timeout)
            except BaseException:
                self._group.shutdown()
                raise
        except BaseException:
            # a half-built cluster must not strand its shared segment
            self._state.close()
            self._state.unlink()
            raise

    # ----------------------------------------------------------------- reads
    def submit_rank(
        self, src: int, candidates: np.ndarray, at_time: float
    ) -> Optional[ProcessPendingResult]:
        """Route a ranking query; ``None`` means it was load-shed."""
        candidates = np.asarray(candidates, dtype=np.int64)
        return self._route(
            "rank",
            meta={"src": int(src), "at_time": float(at_time)},
            arrays={"candidates": candidates},
        )

    def submit_predict(
        self, src: np.ndarray, dst: np.ndarray, times: np.ndarray
    ) -> Optional[ProcessPendingResult]:
        """Route a link-probability query; ``None`` means it was load-shed."""
        return self._route(
            "predict",
            meta={},
            arrays={
                "src": np.asarray(src, dtype=np.int64),
                "dst": np.asarray(dst, dtype=np.int64),
                "times": np.asarray(times, dtype=np.float64),
            },
        )

    def _route(self, tag, meta, arrays) -> Optional[ProcessPendingResult]:
        self._ensure_open()
        with self._lock:
            self.stats.submitted += 1
            for link in self.replicas:
                link.pump(0.0)
            if (
                self.admission_limit is not None
                and self.pending_requests >= self.admission_limit
            ):
                self.stats.shed += 1
                return None
            self._group.poll_failures()
            link = self._router(self)
            self.stats.routed[link.index] += 1
            self._req_counter += 1
            req_id = self._req_counter
            result = ProcessPendingResult(link, req_id, time.perf_counter())
            with link.lock:
                link.outstanding[req_id] = result
                link.channel.send(tag, meta={**meta, "req_id": req_id}, arrays=arrays)
            return result

    # ---------------------------------------------------------------- writes
    def ingest(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        edge_feats: Optional[np.ndarray] = None,
    ) -> int:
        """Two-phase broadcast of one chronological event batch.

        Phase 1 (*drain*) flushes every replica's queued reads so no flush
        can race the state fold; phase 2 folds once (worker 0) and appends
        the events to every replica's graph copy.  Returns total events
        ingested so far (the WAL-offset contract of the threaded cluster).
        """
        self._ensure_open()
        with self._lock:
            src, dst, times, edge_feats = self.graph.check_events(
                src, dst, times, edge_feats
            )
            if self.graph.edge_feats is not None and edge_feats is None:
                edge_feats = np.zeros(
                    (len(src), self.graph.edge_dim), dtype=np.float32
                )
            self.wal.append(src, dst, times, edge_feats)
            arrays = {"src": src, "dst": dst, "times": times}
            if edge_feats is not None:
                arrays["edge_feats"] = edge_feats
            for link in self.replicas:
                link.channel.send("drain")
            for link in self.replicas:
                link.await_ack("drain_ack", self.timeout)
            for link in self.replicas:
                link.channel.send(
                    "fold", meta={"fold_state": link.index == 0}, arrays=arrays
                )
            for link in self.replicas:
                link.await_ack("fold_ack", self.timeout)
            # keep the parent's reference graph in lockstep with the workers
            self.graph.append_events(src, dst, times, edge_feats)
            self.stats.ingested_events += len(src)
            return self.stats.ingested_events

    # ------------------------------------------------------------- batch mgmt
    @property
    def pending_requests(self) -> int:
        return sum(link.load for link in self.replicas)

    def poll(self) -> None:
        """Collect any completed results (workers flush autonomously)."""
        for link in self.replicas:
            link.pump(0.0)

    def flush_all(self) -> None:
        """Force-flush every replica and collect the results."""
        self._ensure_open()
        with self._lock:
            for link in self.replicas:
                link.channel.send("flush")
            for link in self.replicas:
                link.await_ack("flush_ack", self.timeout)
            self.poll()

    # ------------------------------------------------------ snapshot/restore
    def _drain_replicas(self) -> None:
        for link in self.replicas:
            link.channel.send("drain")
        for link in self.replicas:
            link.await_ack("drain_ack", self.timeout)

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the serving state — WAL + the shared memory/mailbox — in
        the exact snapshot format of the threaded cluster.

        Because the k process replicas read **one** shared state, the file
        records that state once per replica slot; a threaded cluster that
        ingested the same stream writes byte-identical replica payloads, so
        the two cluster kinds restore from each other's snapshots.
        """
        self._ensure_open()
        with self._lock:
            # quiesce queued reads so no micro-batch flush mutates the
            # shared state while it is being serialized
            self._drain_replicas()
            return write_snapshot(
                path,
                graph=self.graph,
                wal=self.wal,
                replica_states=[
                    (self._state.memory, self._state.mailbox)
                    for _ in self.replicas
                ],
            )

    def restore(self, path: Union[str, Path]) -> dict:
        """Restore a snapshot into this *pristine* cluster (same validation
        as the threaded restore); returns the snapshot metadata.

        The WAL replays into every replica's graph copy (structure only —
        the ``fold`` frames carry ``fold_state=False``) and the snapshot's
        replica-0 state is written into the shared segment, which every
        replica reads; queries afterwards score identically to the
        snapshotted cluster.
        """
        self._ensure_open()
        with self._lock:
            meta, (src, dst, times, feats), replica_arrays = read_snapshot(
                path, graph=self.graph, wal=self.wal, k=len(self.replicas)
            )
            self._drain_replicas()
            if len(src):
                arrays = {"src": src, "dst": dst, "times": times}
                if feats is not None:
                    arrays["edge_feats"] = feats
                for link in self.replicas:
                    link.channel.send("fold", meta={"fold_state": False}, arrays=arrays)
                for link in self.replicas:
                    link.await_ack("fold_ack", self.timeout)
                self.wal.append(src, dst, times, feats)
                self.graph.append_events(src, dst, times, feats)
                self.stats.ingested_events += len(src)
            state = replica_arrays[0]
            self._state.memory.memory[...] = state["memory"]
            self._state.memory.last_update[...] = state["last_update"]
            self._state.mailbox.mail[...] = state["mail"]
            self._state.mailbox.mail_time[...] = state["mail_time"]
            self._state.mailbox.has_mail[...] = state["has_mail"]
            return meta

    # ---------------------------------------------------------- observability
    def worker_stats(self) -> List[dict]:
        """Per-replica engine/batcher counters (dedup, memoization, flushes)."""
        self._ensure_open()
        with self._lock:
            for link in self.replicas:
                link.channel.send("stats")
            return [link.await_ack("stats_ack", self.timeout) for link in self.replicas]

    # ------------------------------------------------------------- lifecycle
    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("serving cluster already shut down")

    def shutdown(self) -> None:
        """Stop the replicas, release the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            for link in self.replicas:
                try:
                    link.channel.send("stop")
                except TransportError:
                    pass
            self._group.join(timeout=min(self.timeout, 60.0))
        finally:
            self._group.terminate()
            self._state.close()
            self._state.unlink()

    def __enter__(self) -> "ProcessServingCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.shutdown()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ProcessServingCluster(k={len(self.replicas)}, policy={self.policy!r}, "
            f"pending={self.pending_requests}, shed={self.stats.shed})"
        )
