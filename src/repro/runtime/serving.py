"""Process-replica serving: k worker processes over one shared serving state.

The threaded :class:`~repro.serve.cluster.ServingCluster` multiplies
queueing capacity with k replica engines, but they share one mutable model
object, so a single lock serializes all compute.  The process cluster
removes that ceiling: each replica is an OS process with its **own** model
copy (true compute parallelism on multi-core hosts), while the node
memory + mailbox live in one shared-memory segment
(:mod:`repro.runtime.sharedmem`) — §3.2.3's "k readers of one state"
applied to serving.  Because the state is shared, the event stream is
folded **once** (by the fold leader, worker 0) instead of k times; every
replica reads the same bytes the threaded replicas would each have
computed, so predictions are bit-identical to the threaded cluster
whenever the micro-batch compositions match (composition is the only
arithmetic variable: a deadline flush that splits a batch differently
changes the dedup set, which can move scores by an ulp on either cluster
kind — that is a property of deadline batching, not of the process
topology).

Protocol (all frames over the worker's control channel):

* reads — ``rank`` / ``predict`` requests are routed round-robin or
  least-loaded, queue into the worker's own
  :class:`~repro.serve.batcher.MicroBatcher` (micro-batching semantics
  identical to the threaded path) and come back as ``result`` frames that
  resolve parent-side :class:`ProcessPendingResult` handles.
* writes — :meth:`ProcessServingCluster.ingest` runs a two-phase commit:
  **drain** (every worker flushes its queued reads and acks, so no flush
  can race the fold) then **fold/append** (worker 0 folds the events into
  the shared state and its graph; the others append to their graph copies
  only).  This is the cross-process equivalent of the threaded cluster's
  engine lock, held exactly as long as an ingest needs it.
* control — ``swap`` hot-loads new model/decoder weights (the worker
  flushes queued work against the old weights first, then overwrites its
  parameter arrays in place and refreshes the precomputed static
  projection); ``stop`` retires the worker.

Elasticity & recovery: the parent owns every worker *individually* (no
fixed-size :class:`~repro.runtime.launcher.ProcessGroup`), so
:meth:`~ProcessServingCluster.add_replica` spawns one more process into
the fleet, :meth:`~ProcessServingCluster.remove_replica` drains and
retires the newest, and a replica that dies mid-stream (``SIGKILL``, a
``serve.replica`` crash failpoint) is respawned into its slot with
failpoints neutralized.  The shared segment makes the respawn's state
instantly correct; its private graph catches up from the parent's copy
(which outlives WAL truncation), and the dead worker's outstanding
requests are re-sent to the fresh replica — re-execution against the same
shared state computes the same bytes, so recovery is invisible in the
response stream as long as no fold landed between submit and replay (the
cluster's synchronous two-phase ingest guarantees exactly that for
requests in flight when a fold starts).

Workers rebuild their serving graph from the declarative config (same
"reconstruct from description" contract as the training runtime) and
receive only the trained weight blobs over the wire.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..api.config import ExperimentConfig
from ..obs import get_registry
from ..serve.ingest import EventLog, read_snapshot, write_snapshot
from ..serve.metrics import LatencyHistogram
from .launcher import DEFAULT_TIMEOUT, _worker_shell
from .sharedmem import SharedGroupState, SharedStateSpec, create_group_states
from .transport import TransportError, TransportTimeout, pipe_channel_pair


# ----------------------------------------------------------------- worker
def serve_worker(
    rank: int,
    channel,
    *,
    config_dict: dict,
    shared_spec: dict,
    serve_meta: dict,
    clear_failpoints: bool = False,
):
    """One serving replica: rebuild graph + model, serve until ``stop``."""
    from ..api.registry import MODELS
    from ..infer.engine import InferenceEngine
    from ..models.decoders import LinkPredictor
    from ..models.tgn import DirectMemoryView, TGNConfig
    from ..serve.batcher import MicroBatcher
    from ..testing import failpoints

    if clear_failpoints:
        # a respawned replica inherits REPRO_FAILPOINTS from the parent's
        # environment; it must not re-trip the failure that killed its
        # predecessor
        failpoints.neutralize()

    cfg = ExperimentConfig.from_dict(config_dict)
    dataset = cfg.build_dataset()
    split = dataset.graph.chronological_split(
        train_frac=cfg.train.train_frac, val_frac=cfg.train.val_frac
    )
    graph = dataset.graph.slice_events(split.train)

    mc = cfg.model
    # same rebuild path as the trainer: the model key resolves through the
    # repro.api registry, so plug-in models serve like the builtin
    model = MODELS.get(mc.model)(
        TGNConfig(
            num_nodes=graph.num_nodes,
            memory_dim=mc.memory_dim,
            time_dim=mc.time_dim,
            embed_dim=mc.embed_dim,
            edge_dim=graph.edge_dim,
            static_dim=mc.static_dim,
            num_neighbors=mc.num_neighbors,
            num_heads=mc.num_heads,
            updater=mc.updater,
            seed=cfg.train.seed,
        )
    )
    decoder = LinkPredictor(mc.embed_dim, rng=np.random.default_rng(cfg.train.seed + 1))
    model.from_bytes(serve_meta.pop("_model_blob"))
    decoder.from_bytes(serve_meta.pop("_decoder_blob"))
    static = serve_meta.pop("_static_table", None)
    if static is not None:
        model.attach_static_memory(static)

    shared = SharedGroupState(SharedStateSpec.from_dict(shared_spec), create=False)
    engine = InferenceEngine(
        model,
        graph,
        decoder=decoder,
        dedup=bool(serve_meta["dedup"]),
        memoize_time=bool(serve_meta["memoize_time"]),
        append_on_observe=False,
    )
    # replica engines serve from the one shared state instead of private copies
    engine.memory = shared.memory
    engine.mailbox = shared.mailbox
    engine.view = DirectMemoryView(shared.memory, shared.mailbox)

    batcher = MicroBatcher(
        engine,
        max_batch_pairs=int(serve_meta["max_batch_pairs"]),
        max_delay=float(serve_meta["max_delay"]),
    )
    pending: Dict[int, object] = {}
    max_delay = float(serve_meta["max_delay"])
    idle_wait = min(max(max_delay / 2, 1e-3), 0.05)

    def sweep() -> None:
        done = [rid for rid, res in pending.items() if res.done]
        for rid in done:
            res = pending.pop(rid)
            try:
                channel.send(
                    "result",
                    meta={"req_id": rid, "latency": res.latency},
                    arrays={"scores": np.asarray(res.value)},
                )
            except Exception as exc:  # noqa: BLE001 - value may carry the error
                channel.send("req_error", meta={"req_id": rid, "error": repr(exc)})

    channel.send("ready", meta={"rank": rank})
    requests = 0
    while True:
        if not channel.poll(idle_wait):
            batcher.poll()
            sweep()
            continue
        frame = channel.recv(timeout=5.0)
        # deadline-check on *every* loop turn: sustained sub-threshold
        # traffic must not starve the max_delay flush trigger (the parent
        # cannot drive worker-side polls the way a threaded waiter can)
        batcher.poll()
        if frame.tag == "rank":
            # chaos hook: fires before the request is served, so a crash
            # leaves it outstanding in the parent for recovery to replay
            failpoints.fire("serve.replica", rank=rank)
            requests += 1
            pending[frame.meta["req_id"]] = batcher.submit_rank(
                int(frame.meta["src"]),
                frame.array("candidates"),
                float(frame.meta["at_time"]),
            )
        elif frame.tag == "predict":
            failpoints.fire("serve.replica", rank=rank)
            requests += 1
            pending[frame.meta["req_id"]] = batcher.submit_predict(
                frame.array("src"), frame.array("dst"), frame.array("times")
            )
        elif frame.tag == "drain":
            batcher.flush()
            sweep()
            channel.send("drain_ack", meta={"rank": rank})
            continue
        elif frame.tag == "fold":
            src, dst = frame.array("src"), frame.array("dst")
            times = frame.array("times")
            ef = frame.arrays.get("edge_feats")
            # the fold leader advances the shared state exactly once for the
            # whole fleet; everyone (leader included) appends to their graph
            # copy so samplers keep seeing fresh neighborhoods
            if frame.meta["fold_state"]:
                engine.observe(src, dst, times, edge_feats=ef)
            graph.append_events(src, dst, times, ef)
            channel.send("fold_ack", meta={"rank": rank, "events": len(src)})
            continue
        elif frame.tag == "swap":
            # hot swap: queued work completes against the old weights, then
            # from_bytes overwrites the parameter arrays in place (compiled
            # tapes read weights by reference, so they stay valid) and the
            # engine rebuilds its precomputed static projection
            batcher.flush()
            sweep()
            model.from_bytes(frame.array("model_blob").tobytes())
            if "decoder_blob" in frame.arrays:
                decoder.from_bytes(frame.array("decoder_blob").tobytes())
            engine.refresh_weights()
            channel.send(
                "swap_ack",
                meta={"rank": rank, "version": int(frame.meta.get("version", -1))},
            )
            continue
        elif frame.tag == "flush":
            batcher.flush()
            sweep()
            channel.send("flush_ack", meta={"rank": rank})
            continue
        elif frame.tag == "stats":
            s = engine.stats
            channel.send(
                "stats_ack",
                meta={
                    "rank": rank,
                    "requests": requests,
                    "queries": s.queries,
                    "unique_queries": s.unique_queries,
                    "time_encodings_requested": s.time_encodings_requested,
                    "time_encodings_computed": s.time_encodings_computed,
                    "flushes": batcher.stats.flushes,
                    "mean_batch_pairs": batcher.stats.mean_batch_pairs,
                },
            )
            continue
        elif frame.tag == "stop":
            batcher.flush()
            sweep()
            break
        else:
            raise TransportError(f"serve worker got unknown frame {frame.tag!r}")
        # size-triggered flushes may have completed requests synchronously
        sweep()

    shared.close()
    return {"rank": rank, "ok": True, "requests": requests}, {}


# ------------------------------------------------------------------ parent
class ProcessPendingResult:
    """Parent-side handle for one routed request (mirrors
    :class:`repro.serve.batcher.PendingResult`'s wait/value/done surface)."""

    def __init__(self, link: "_ReplicaLink", req_id: int, submitted_at: float) -> None:
        self._link = link
        self._cluster: Optional["ProcessServingCluster"] = None
        self._event = threading.Event()
        self._value: Optional[np.ndarray] = None
        self._error: Optional[str] = None
        self.req_id = req_id
        self.submitted_at = submitted_at
        self.completed_at: Optional[float] = None
        # the original (tag, meta, arrays) so a replica failure can replay
        # the request verbatim on the respawned worker
        self.resend: Optional[Tuple[str, dict, dict]] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def value(self) -> np.ndarray:
        if not self.done:
            raise RuntimeError("request not completed yet; call wait()")
        if self._error is not None:
            raise RuntimeError(self._error)
        return self._value

    @property
    def latency(self) -> float:
        if self.completed_at is None:
            raise RuntimeError("request not completed yet")
        return self.completed_at - self.submitted_at

    def wait(self, timeout: Optional[float] = None) -> np.ndarray:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._event.is_set():
            self._link.pump(0.05)
            if self._link.dead and self._cluster is not None:
                # replica died with this request outstanding: drive the
                # cluster's recovery, which respawns the slot and re-sends
                # the request (rebinding self._link)
                self._cluster.poll()
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("request not completed within timeout")
        return self.value

    def _fulfill(self, value: np.ndarray, error: Optional[str]) -> None:
        self._value = value
        self._error = error
        self.completed_at = time.perf_counter()
        self._event.set()


class _ReplicaLink:
    """Parent's view of one serve worker: process + channel + outstanding
    requests."""

    def __init__(
        self,
        index: int,
        channel,
        proc=None,
        on_result: Optional[Callable[[ProcessPendingResult], None]] = None,
    ) -> None:
        self.index = index
        self.channel = channel
        self.proc = proc
        self.on_result = on_result
        self.lock = threading.RLock()
        self.failed = False
        self.outstanding: Dict[int, ProcessPendingResult] = {}
        self.acks: Dict[str, List[dict]] = {}

    @property
    def load(self) -> int:
        return len(self.outstanding)

    @property
    def dead(self) -> bool:
        """The worker can no longer answer: its pipe broke or its process
        exited while the cluster still expects it to serve."""
        return self.failed or (self.proc is not None and not self.proc.is_alive())

    def send(self, tag: str, meta: Optional[dict] = None, arrays=None) -> bool:
        """Best-effort frame send; a broken pipe marks the link dead
        instead of raising (recovery picks the slot up)."""
        try:
            with self.lock:
                self.channel.send(tag, meta=meta or {}, arrays=arrays or {})
            return True
        except (TransportError, OSError):
            self.failed = True
            return False

    def pump(self, timeout: float = 0.0) -> None:
        """Dispatch any frames the worker sent.

        Results fulfill their handles; everything else (acks, ready) lands
        in :attr:`acks` for whoever is waiting on it — concurrent pumpers
        (a waiting client, an in-flight ingest) can therefore never steal
        each other's frames.  EOF on a dead worker's pipe marks the link
        failed rather than raising: death is a recoverable condition here.
        """
        with self.lock:
            while True:
                try:
                    if not self.channel.poll(timeout):
                        return
                    frame = self.channel.recv(timeout=1.0)
                except (TransportError, TransportTimeout, OSError):
                    self.failed = True
                    return
                if frame.tag == "result":
                    res = self.outstanding.pop(frame.meta["req_id"], None)
                    if res is not None:
                        res._fulfill(frame.array("scores"), None)
                        if self.on_result is not None:
                            self.on_result(res)
                elif frame.tag == "req_error":
                    res = self.outstanding.pop(frame.meta["req_id"], None)
                    if res is not None:
                        res._fulfill(None, frame.meta.get("error", "request failed"))
                elif frame.tag == "error":
                    raise TransportError(
                        f"serve worker {self.index} failed: "
                        f"{frame.meta.get('error', 'unknown')}"
                    )
                else:
                    self.acks.setdefault(frame.tag, []).append(dict(frame.meta))
                timeout = 0.0  # only the first poll blocks

    def await_ack(self, tag: str, timeout: float) -> dict:
        """Pump until one ``tag`` frame arrives; returns its metadata.

        Raises :class:`TransportError` promptly when the worker dies while
        waiting (instead of burning the whole timeout) — callers translate
        that into slot recovery.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self.lock:
                queued = self.acks.get(tag)
                if queued:
                    return queued.pop(0)
            self.pump(0.05)
            if self.dead:
                # one last drain: the ack may have raced the death
                self.pump(0.0)
                with self.lock:
                    queued = self.acks.get(tag)
                    if queued:
                        return queued.pop(0)
                raise TransportError(
                    f"serve worker {self.index} died awaiting {tag!r}"
                )
        raise TransportTimeout(f"worker {self.index}: no {tag!r} within {timeout:.0f}s")

    def close(self) -> None:
        try:
            self.channel.close()
        except Exception:  # pragma: no cover - defensive
            pass


@dataclass
class ProcessClusterStats:
    """Front-door accounting (mirrors the threaded ``ClusterStats``)."""

    submitted: int = 0
    shed: int = 0
    completed: int = 0
    ingested_events: int = 0
    recoveries: int = 0
    routed: List[int] = field(default_factory=list)

    @property
    def admitted(self) -> int:
        return self.submitted - self.shed


class ProcessServingCluster:
    """k process replicas over one shared serving state, one front door.

    Built by ``Session.serve(process_replicas=True)``.  Use as a context
    manager (or call :meth:`shutdown`) — the replicas are real processes
    and the shared segment must be unlinked.

    Elasticity parity with the threaded cluster: :meth:`add_replica` /
    :meth:`remove_replica` grow and shrink the fleet (the
    :class:`~repro.serve.elastic.ReplicaAutoscaler` drives either cluster
    kind), :meth:`hot_swap` rolls new weights through every worker, and
    WAL cursors + :meth:`truncate_wal` bound the front-door log.  Hedged
    duplicate dispatch is a threaded-cluster feature only: true loser
    cancellation needs the pre-compute queue access that worker processes
    do not expose over the wire.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        serve_graph,
        model,
        decoder,
        k: int = 2,
        *,
        policy: str = "round_robin",
        admission_limit: Optional[int] = None,
        max_batch_pairs: int = 256,
        max_delay: float = 2e-3,
        dedup: bool = True,
        memoize_time: bool = True,
        timeout: float = DEFAULT_TIMEOUT,
        histogram_cap: Optional[int] = None,
        auto_truncate_wal: bool = False,
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        from ..api.registry import ROUTERS

        if policy not in ROUTERS:
            raise ValueError(
                f"unknown policy {policy!r}; choose one of {list(ROUTERS.available())}"
            )
        if admission_limit is not None and admission_limit < 1:
            raise ValueError("admission_limit must be positive (or None)")
        self._router = ROUTERS.get(policy)
        self.policy = policy
        self.admission_limit = admission_limit
        self.graph = serve_graph
        # the front door keeps the WAL (batch boundaries included), so the
        # process cluster snapshots/restores exactly like the threaded one
        self.wal = EventLog(edge_dim=serve_graph.edge_dim)
        self.timeout = timeout
        self.auto_truncate_wal = auto_truncate_wal
        self.model_version = 0
        self._lock = threading.RLock()
        self._rr = 0
        self._req_counter = 0
        self._closed = False
        self._wal_cursors: Dict[str, int] = {}
        # events the workers' config-rebuilt serve graphs start with; the
        # parent graph tail past this point is what a freshly spawned
        # worker replays to catch up (it outlives WAL truncation)
        self._base_events = serve_graph.num_events
        self.stats = ProcessClusterStats(routed=[0] * k)
        self.request_latency = (
            LatencyHistogram(cap=histogram_cap)
            if histogram_cap is not None
            else LatencyHistogram()
        )
        self._ctx = mp.get_context("spawn")
        self._retired: List = []

        (self._state,) = create_group_states(
            1,
            num_nodes=serve_graph.num_nodes,
            memory_dim=model.config.memory_dim,
            edge_dim=serve_graph.edge_dim,
            name_prefix="repro-serve",
        )
        # spawn arguments travel through the multiprocessing pickler, so
        # the weight blobs ride along as plain bytes (frames are for live
        # traffic); hot_swap updates them so respawns and added replicas
        # always start on the current model version
        self._model_blob = model.to_bytes()
        self._decoder_blob = decoder.to_bytes()
        self._static_table = (
            model._static_table.copy() if model.has_static_memory else None
        )
        self._serve_opts = {
            "max_batch_pairs": max_batch_pairs,
            "max_delay": max_delay,
            "dedup": dedup,
            "memoize_time": memoize_time,
        }
        self._config_dict = config.to_dict()
        self.replicas: List[_ReplicaLink] = []
        try:
            for index in range(k):
                self.replicas.append(self._spawn_link(index))
        except BaseException:
            # a half-built cluster must not strand processes or the segment
            for link in self.replicas:
                if link.proc is not None and link.proc.is_alive():
                    link.proc.terminate()
                link.close()
            self._state.close()
            self._state.unlink()
            raise

    # ------------------------------------------------------------- spawning
    def _spawn_link(self, index: int, *, clear_failpoints: bool = False) -> _ReplicaLink:
        """Start one serve worker and wait for its ``ready`` frame."""
        parent_ch, child_ch = pipe_channel_pair(self.timeout)
        kwargs = {
            "config_dict": self._config_dict,
            "shared_spec": self._state.spec.to_dict(),
            "serve_meta": {
                **self._serve_opts,
                "_model_blob": self._model_blob,
                "_decoder_blob": self._decoder_blob,
                "_static_table": self._static_table,
            },
            "clear_failpoints": clear_failpoints,
        }
        proc = self._ctx.Process(
            target=_worker_shell,
            args=(serve_worker, index, child_ch, kwargs),
            name=f"repro-serve-{index}",
            daemon=True,
        )
        proc.start()
        child_ch.close()
        link = _ReplicaLink(index, parent_ch, proc=proc, on_result=self._on_result)
        try:
            link.await_ack("ready", self.timeout)
        except BaseException:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
            link.close()
            raise
        return link

    def _catch_up(self, link: _ReplicaLink) -> None:
        """Replay the parent graph's post-construction tail into a freshly
        spawned worker's private graph (state is shared memory, so it is
        already correct)."""
        tail = self.graph.num_events - self._base_events
        if not tail:
            return
        arrays = {
            "src": self.graph.src[self._base_events:],
            "dst": self.graph.dst[self._base_events:],
            "times": self.graph.timestamps[self._base_events:],
        }
        if self.graph.edge_feats is not None:
            arrays["edge_feats"] = self.graph.edge_feats[self._base_events:]
        link.send("fold", meta={"fold_state": False}, arrays=arrays)
        link.await_ack("fold_ack", self.timeout)

    def _on_result(self, res: ProcessPendingResult) -> None:
        self.stats.completed += 1
        self.request_latency.record(max(0.0, res.latency))
        get_registry().counter("serve/completed").add()

    # ------------------------------------------------------------- recovery
    def _check_replicas(self) -> None:
        """Pump every link; respawn any slot whose worker died."""
        for index in range(len(self.replicas)):
            link = self.replicas[index]
            link.pump(0.0)
            if link.dead:
                self._recover(index)

    def _recover(self, index: int) -> _ReplicaLink:
        """Respawn slot ``index`` and replay its outstanding requests.

        The respawn neutralizes inherited failpoints (a crash failpoint
        must take a replica down once, not turn recovery into a crash
        loop).  Re-executed requests read the same shared state the dead
        worker would have — the synchronous two-phase ingest means no fold
        can have landed between the original submit and this replay — so
        the response stream is bitwise what an unfaulted run produces.
        """
        old = self.replicas[index]
        if old.proc is not None:
            old.proc.join(timeout=5.0)
        old.close()
        link = self._spawn_link(index, clear_failpoints=True)
        self._catch_up(link)
        for req_id, res in sorted(old.outstanding.items()):
            tag, meta, arrays = res.resend
            res._link = link
            link.outstanding[req_id] = res
            link.send(tag, meta={**meta, "req_id": req_id}, arrays=arrays)
        old.outstanding.clear()
        self.replicas[index] = link
        self.stats.recoveries += 1
        get_registry().counter("serve/replica_recoveries").add()
        return link

    def _ack_or_recover(
        self,
        index: int,
        tag: str,
        resend: Optional[Callable[[_ReplicaLink], None]],
    ) -> dict:
        """Await ``tag`` from slot ``index``; if the worker died, recover
        the slot, re-issue the phase's frame via ``resend`` and await once
        more.  ``resend=None`` means the phase cannot be replayed safely
        (the fold leader mid-state-fold) — death propagates."""
        for attempt in range(2):
            link = self.replicas[index]
            try:
                return link.await_ack(tag, self.timeout)
            except TransportError:
                if resend is None or attempt or not link.dead:
                    raise
                fresh = self._recover(index)
                resend(fresh)
        raise TransportError(f"worker {index} failed twice awaiting {tag!r}")

    # ----------------------------------------------------------------- reads
    def submit_rank(
        self, src: int, candidates: np.ndarray, at_time: float
    ) -> Optional[ProcessPendingResult]:
        """Route a ranking query; ``None`` means it was load-shed."""
        candidates = np.asarray(candidates, dtype=np.int64)
        return self._route(
            "rank",
            meta={"src": int(src), "at_time": float(at_time)},
            arrays={"candidates": candidates},
        )

    def submit_predict(
        self, src: np.ndarray, dst: np.ndarray, times: np.ndarray
    ) -> Optional[ProcessPendingResult]:
        """Route a link-probability query; ``None`` means it was load-shed."""
        return self._route(
            "predict",
            meta={},
            arrays={
                "src": np.asarray(src, dtype=np.int64),
                "dst": np.asarray(dst, dtype=np.int64),
                "times": np.asarray(times, dtype=np.float64),
            },
        )

    def _route(self, tag, meta, arrays) -> Optional[ProcessPendingResult]:
        self._ensure_open()
        with self._lock:
            self.stats.submitted += 1
            self._check_replicas()
            if (
                self.admission_limit is not None
                and self.pending_requests >= self.admission_limit
            ):
                self.stats.shed += 1
                return None
            link = self._router(self)
            self.stats.routed[link.index] += 1
            self._req_counter += 1
            req_id = self._req_counter
            result = ProcessPendingResult(link, req_id, time.perf_counter())
            result._cluster = self
            result.resend = (tag, dict(meta), dict(arrays))
            with link.lock:
                link.outstanding[req_id] = result
                sent = link.send(tag, meta={**meta, "req_id": req_id}, arrays=arrays)
            if not sent:
                # the pipe broke on the send itself: recover now so the
                # request replays immediately on the fresh worker
                self._recover(link.index)
            return result

    # ---------------------------------------------------------------- writes
    def ingest(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        edge_feats: Optional[np.ndarray] = None,
    ) -> int:
        """Two-phase broadcast of one chronological event batch.

        Phase 1 (*drain*) flushes every replica's queued reads so no flush
        can race the state fold; phase 2 folds once (worker 0) and appends
        the events to every replica's graph copy.  Returns total events
        ingested so far (the WAL-offset contract of the threaded cluster).

        A non-leader replica that dies mid-ingest is recovered in place
        (its catch-up replays through the parent graph, then this batch is
        re-sent structure-only).  A fold-leader death between the state
        fold starting and its ack is not recoverable — the parent cannot
        know whether the shared state advanced — and propagates as a
        transport error.
        """
        self._ensure_open()
        with self._lock:
            self._check_replicas()
            src, dst, times, edge_feats = self.graph.check_events(
                src, dst, times, edge_feats
            )
            if self.graph.edge_feats is not None and edge_feats is None:
                edge_feats = np.zeros(
                    (len(src), self.graph.edge_dim), dtype=np.float32
                )
            self.wal.append(src, dst, times, edge_feats)
            arrays = {"src": src, "dst": dst, "times": times}
            if edge_feats is not None:
                arrays["edge_feats"] = edge_feats
            for link in self.replicas:
                link.send("drain")
            for index in range(len(self.replicas)):
                self._ack_or_recover(index, "drain_ack", lambda l: l.send("drain"))
            for link in self.replicas:
                link.send(
                    "fold", meta={"fold_state": link.index == 0}, arrays=arrays
                )
            for index in range(len(self.replicas)):
                self._ack_or_recover(
                    index,
                    "fold_ack",
                    None
                    if index == 0
                    else (
                        lambda l: l.send(
                            "fold", meta={"fold_state": False}, arrays=arrays
                        )
                    ),
                )
            # keep the parent's reference graph in lockstep with the workers
            self.graph.append_events(src, dst, times, edge_feats)
            self.stats.ingested_events += len(src)
            registry = get_registry()
            registry.counter("serve/ingested_events").add(float(len(src)))
            registry.counter("serve/ingest_batches").add()
            if self.auto_truncate_wal:
                self.truncate_wal()
            return self.stats.ingested_events

    # ------------------------------------------------------------ WAL cursors
    def hold_wal_cursor(self, name: str, offset: int) -> None:
        """Register a consumer at logical WAL ``offset``: truncation never
        drops events at or past the minimum held cursor."""
        with self._lock:
            self._wal_cursors[name] = int(offset)

    def release_wal_cursor(self, name: str) -> None:
        with self._lock:
            self._wal_cursors.pop(name, None)

    def wal_cursor_floor(self) -> int:
        """The minimum catch-up cursor across consumers (replicas fold
        synchronously inside :meth:`ingest`, so theirs is ``len(wal)``)."""
        with self._lock:
            cursors = list(self._wal_cursors.values())
        return min(cursors + [len(self.wal)])

    def truncate_wal(self) -> int:
        """Drop WAL batches below the cursor floor; returns events dropped."""
        before = self.wal.base_offset
        self.wal.truncate_until(self.wal_cursor_floor())
        dropped = self.wal.base_offset - before
        if dropped:
            get_registry().counter("serve/wal_truncated_events").add(float(dropped))
        get_registry().gauge("serve/wal_held_events").set(
            float(len(self.wal) - self.wal.base_offset)
        )
        return dropped

    # ------------------------------------------------------------- batch mgmt
    @property
    def pending_requests(self) -> int:
        return sum(link.load for link in self.replicas)

    def poll(self) -> None:
        """Collect completed results; recover any dead replica slots."""
        with self._lock:
            self._check_replicas()

    def flush_all(self) -> None:
        """Force-flush every replica and collect the results."""
        self._ensure_open()
        with self._lock:
            self._check_replicas()
            for link in self.replicas:
                link.send("flush")
            for index in range(len(self.replicas)):
                self._ack_or_recover(index, "flush_ack", lambda l: l.send("flush"))
            self._check_replicas()

    # -------------------------------------------------------------- elasticity
    def add_replica(self) -> _ReplicaLink:
        """Grow the fleet by one worker process.

        The shared segment makes the newcomer's serving state correct by
        construction; its private graph catches up from the parent's copy
        (which holds the full ingested history even after WAL truncation),
        and it starts answering on the current model version — hot_swap
        keeps the spawn-template weight blobs fresh.
        """
        self._ensure_open()
        with self._lock:
            index = len(self.replicas)
            link = self._spawn_link(index)
            self._catch_up(link)
            self.replicas.append(link)
            self.stats.routed.append(0)
        registry = get_registry()
        registry.counter("serve/replicas_added").add()
        registry.gauge("serve/replicas").set(float(len(self.replicas)))
        return link

    def remove_replica(self) -> _ReplicaLink:
        """Shrink the fleet by draining and retiring the newest worker.

        The retiree flushes its queued reads (every outstanding request
        completes before the ``stop``), so a scale-down is invisible in
        the response stream.
        """
        self._ensure_open()
        with self._lock:
            if len(self.replicas) <= 1:
                raise ValueError("cannot remove the last replica")
            link = self.replicas[-1]
            try:
                link.send("flush")
                link.await_ack("flush_ack", self.timeout)
                link.pump(0.0)
            except (TransportError, TransportTimeout):
                pass  # a dying retiree's requests replay below
            self.replicas.pop()
            # anything still outstanding (the worker died mid-drain) is
            # re-routed to a surviving replica
            for req_id, res in sorted(link.outstanding.items()):
                target = self.replicas[0]
                tag, meta, arrays = res.resend
                res._link = target
                target.outstanding[req_id] = res
                target.send(tag, meta={**meta, "req_id": req_id}, arrays=arrays)
            link.outstanding.clear()
            link.send("stop")
            if link.proc is not None:
                # reaped lazily at shutdown so scale-down never blocks on
                # the worker's exit
                self._retired.append(link.proc)
        registry = get_registry()
        registry.counter("serve/replicas_removed").add()
        registry.gauge("serve/replicas").set(float(len(self.replicas)))
        return link

    # --------------------------------------------------------------- hot swap
    def hot_swap(
        self,
        model_blob: bytes,
        decoder_blob: Optional[bytes] = None,
        *,
        version: Optional[int] = None,
    ) -> int:
        """Roll new model/decoder weights through every worker in place.

        Queued work flushes against the old weights first; then each
        worker overwrites its parameter arrays and refreshes its static
        projection.  Serving memory/mailbox state carries across — a swap
        changes the *model*, not the streamed history.  The spawn-template
        blobs update too, so respawns and added replicas join on the new
        version.
        """
        self._ensure_open()
        with self._lock:
            self.flush_all()
            self._model_blob = bytes(model_blob)
            if decoder_blob is not None:
                self._decoder_blob = bytes(decoder_blob)
            self.model_version = (
                version if version is not None else self.model_version + 1
            )
            arrays = {"model_blob": np.frombuffer(self._model_blob, dtype=np.uint8)}
            if decoder_blob is not None:
                arrays["decoder_blob"] = np.frombuffer(
                    self._decoder_blob, dtype=np.uint8
                )
            meta = {"version": self.model_version}
            for link in self.replicas:
                link.send("swap", meta=meta, arrays=arrays)
            for index in range(len(self.replicas)):
                # a slot recovered mid-swap respawns from the already-
                # updated template blobs; the re-sent swap is idempotent
                self._ack_or_recover(
                    index,
                    "swap_ack",
                    lambda l: l.send("swap", meta=meta, arrays=arrays),
                )
        registry = get_registry()
        registry.counter("serve/hot_swaps").add()
        registry.gauge("serve/model_version").set(float(self.model_version))
        return self.model_version

    # ------------------------------------------------------ snapshot/restore
    def _drain_replicas(self) -> None:
        for link in self.replicas:
            link.send("drain")
        for index in range(len(self.replicas)):
            self._ack_or_recover(index, "drain_ack", lambda l: l.send("drain"))

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the serving state — WAL + the shared memory/mailbox — in
        the exact snapshot format of the threaded cluster.

        Because the k process replicas read **one** shared state, the file
        records that state once per replica slot; a threaded cluster that
        ingested the same stream writes byte-identical replica payloads, so
        the two cluster kinds restore from each other's snapshots.
        """
        self._ensure_open()
        with self._lock:
            # quiesce queued reads so no micro-batch flush mutates the
            # shared state while it is being serialized
            self._drain_replicas()
            return write_snapshot(
                path,
                graph=self.graph,
                wal=self.wal,
                replica_states=[
                    (self._state.memory, self._state.mailbox)
                    for _ in self.replicas
                ],
            )

    def restore(self, path: Union[str, Path]) -> dict:
        """Restore a snapshot into this *pristine* cluster (same validation
        as the threaded restore); returns the snapshot metadata.

        The WAL replays into every replica's graph copy (structure only —
        the ``fold`` frames carry ``fold_state=False``) and the snapshot's
        replica-0 state is written into the shared segment, which every
        replica reads; queries afterwards score identically to the
        snapshotted cluster.
        """
        self._ensure_open()
        with self._lock:
            meta, (src, dst, times, feats), replica_arrays = read_snapshot(
                path, graph=self.graph, wal=self.wal, k=len(self.replicas)
            )
            self._drain_replicas()
            if len(src):
                arrays = {"src": src, "dst": dst, "times": times}
                if feats is not None:
                    arrays["edge_feats"] = feats
                for link in self.replicas:
                    link.send("fold", meta={"fold_state": False}, arrays=arrays)
                for index in range(len(self.replicas)):
                    self._ack_or_recover(
                        index,
                        "fold_ack",
                        lambda l: l.send(
                            "fold", meta={"fold_state": False}, arrays=arrays
                        ),
                    )
                self.wal.append(src, dst, times, feats)
                self.graph.append_events(src, dst, times, feats)
                self.stats.ingested_events += len(src)
            state = replica_arrays[0]
            self._state.memory.memory[...] = state["memory"]
            self._state.memory.last_update[...] = state["last_update"]
            self._state.mailbox.mail[...] = state["mail"]
            self._state.mailbox.mail_time[...] = state["mail_time"]
            self._state.mailbox.has_mail[...] = state["has_mail"]
            return meta

    # ---------------------------------------------------------- observability
    def worker_stats(self) -> List[dict]:
        """Per-replica engine/batcher counters (dedup, memoization, flushes)."""
        self._ensure_open()
        with self._lock:
            self._check_replicas()
            for link in self.replicas:
                link.send("stats")
            return [
                self._ack_or_recover(index, "stats_ack", lambda l: l.send("stats"))
                for index in range(len(self.replicas))
            ]

    def latency(self) -> LatencyHistogram:
        """Front-door request latency (recorded once per completed
        request, submit to result-frame arrival)."""
        return self.request_latency

    def export_metrics(self) -> dict:
        """Fold cluster state into the shared registry; returns its snapshot."""
        registry = get_registry()
        if self.request_latency.count:
            registry.histogram(
                "serve/latency_s", cap=self.request_latency.cap
            ).merge_snapshot(self.request_latency.snapshot())
        registry.gauge("serve/pending_requests").set(float(self.pending_requests))
        registry.gauge("serve/replicas").set(float(len(self.replicas)))
        registry.gauge("serve/model_version").set(float(self.model_version))
        return registry.snapshot()

    # ------------------------------------------------------------- lifecycle
    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("serving cluster already shut down")

    def shutdown(self) -> None:
        """Stop the replicas, release the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        procs = [
            link.proc for link in self.replicas if link.proc is not None
        ] + self._retired
        try:
            for link in self.replicas:
                link.send("stop")
            deadline = time.monotonic() + min(self.timeout, 60.0)
            for proc in procs:
                proc.join(timeout=max(0.1, deadline - time.monotonic()))
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
                    if proc.is_alive():  # pragma: no cover - last resort
                        proc.kill()
                        proc.join(timeout=5.0)
            for link in self.replicas:
                link.close()
            self._state.close()
            self._state.unlink()

    def __enter__(self) -> "ProcessServingCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.shutdown()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ProcessServingCluster(k={len(self.replicas)}, policy={self.policy!r}, "
            f"pending={self.pending_requests}, shed={self.stats.shed})"
        )
