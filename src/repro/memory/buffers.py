"""Shared buffers between trainer processes and the memory daemon (§3.3).

The paper lists seven buffers shared by each group of ``i × j`` trainers and
its daemon; we reproduce them with the same names plus timestamp side-bands
(the paper bundles timestamps with the payloads; we keep them as separate
arrays for clarity):

* ``mem_read_buf``   [i·j, cap, d_mem]   — memory read results
* ``mail_read_buf``  [i·j, cap, mail_dim] — mail read results
* ``read_1idx_buf``  [i·j, cap + 1]       — read indexes, slot 0 = count
* ``mem_write_buf``  [i·j, bs, d_mem]     — memory write payload
* ``mail_write_buf`` [i·j, bs, mail_dim]  — mail write payload
* ``write_1idx_buf`` [i·j, bs + 1]        — write indexes, slot 0 = count
* ``read_status`` / ``write_status`` [i·j] — request flags (0 idle, 1 pending)

In the paper these live in POSIX shared memory across processes; here they
are process-local numpy arrays shared between Python threads, which gives
identical ordering semantics (flag writes + spin reads) without the IPC.
"""

from __future__ import annotations

import numpy as np


class SharedBuffers:
    """Buffer block for one daemon group of ``num_ranks = i * j`` trainers."""

    def __init__(
        self,
        num_ranks: int,
        read_capacity: int,
        write_capacity: int,
        memory_dim: int,
        mail_dim: int,
    ) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self.num_ranks = num_ranks
        self.read_capacity = read_capacity
        self.write_capacity = write_capacity
        self.memory_dim = memory_dim
        self.mail_dim = mail_dim

        self.mem_read_buf = np.zeros((num_ranks, read_capacity, memory_dim), np.float32)
        self.mail_read_buf = np.zeros((num_ranks, read_capacity, mail_dim), np.float32)
        self.mem_ts_read_buf = np.zeros((num_ranks, read_capacity), np.float64)
        self.mail_ts_read_buf = np.zeros((num_ranks, read_capacity), np.float64)
        self.read_1idx_buf = np.zeros((num_ranks, read_capacity + 1), np.int64)

        self.mem_write_buf = np.zeros((num_ranks, write_capacity, memory_dim), np.float32)
        self.mail_write_buf = np.zeros((num_ranks, write_capacity, mail_dim), np.float32)
        self.mem_ts_write_buf = np.zeros((num_ranks, write_capacity), np.float64)
        self.mail_ts_write_buf = np.zeros((num_ranks, write_capacity), np.float64)
        self.write_1idx_buf = np.zeros((num_ranks, write_capacity + 1), np.int64)
        self.mail_write_1idx_buf = np.zeros((num_ranks, write_capacity + 1), np.int64)

        self.read_status = np.zeros(num_ranks, np.int8)
        self.write_status = np.zeros(num_ranks, np.int8)

    # ----------------------------------------------------------- trainer side
    def stage_read(self, rank: int, nodes: np.ndarray) -> None:
        n = len(nodes)
        if n > self.read_capacity:
            raise ValueError(f"read of {n} nodes exceeds capacity {self.read_capacity}")
        self.read_1idx_buf[rank, 0] = n
        self.read_1idx_buf[rank, 1 : n + 1] = nodes

    def stage_write(
        self,
        rank: int,
        mem_nodes: np.ndarray,
        mem_values: np.ndarray,
        mem_times: np.ndarray,
        mail_nodes: np.ndarray,
        mail_values: np.ndarray,
        mail_times: np.ndarray,
    ) -> None:
        n = len(mem_nodes)
        m = len(mail_nodes)
        if n > self.write_capacity or m > self.write_capacity:
            raise ValueError("write exceeds buffer capacity")
        self.write_1idx_buf[rank, 0] = n
        self.write_1idx_buf[rank, 1 : n + 1] = mem_nodes
        self.mem_write_buf[rank, :n] = mem_values
        self.mem_ts_write_buf[rank, :n] = mem_times
        self.mail_write_1idx_buf[rank, 0] = m
        self.mail_write_1idx_buf[rank, 1 : m + 1] = mail_nodes
        self.mail_write_buf[rank, :m] = mail_values
        self.mail_ts_write_buf[rank, :m] = mail_times

    # ------------------------------------------------------------ daemon side
    def read_request(self, rank: int) -> np.ndarray:
        n = int(self.read_1idx_buf[rank, 0])
        return self.read_1idx_buf[rank, 1 : n + 1]

    def write_request(self, rank: int):
        n = int(self.write_1idx_buf[rank, 0])
        m = int(self.mail_write_1idx_buf[rank, 0])
        return (
            self.write_1idx_buf[rank, 1 : n + 1],
            self.mem_write_buf[rank, :n],
            self.mem_ts_write_buf[rank, :n],
            self.mail_write_1idx_buf[rank, 1 : m + 1],
            self.mail_write_buf[rank, :m],
            self.mail_ts_write_buf[rank, :m],
        )

    def fill_read_result(
        self,
        rank: int,
        mem: np.ndarray,
        mem_ts: np.ndarray,
        mail: np.ndarray,
        mail_ts: np.ndarray,
    ) -> None:
        n = len(mem)
        self.mem_read_buf[rank, :n] = mem
        self.mem_ts_read_buf[rank, :n] = mem_ts
        self.mail_read_buf[rank, :n] = mail
        self.mail_ts_read_buf[rank, :n] = mail_ts

    def read_result(self, rank: int):
        n = int(self.read_1idx_buf[rank, 0])
        return (
            self.mem_read_buf[rank, :n].copy(),
            self.mem_ts_read_buf[rank, :n].copy(),
            self.mail_read_buf[rank, :n].copy(),
            self.mail_ts_read_buf[rank, :n].copy(),
        )

    def nbytes(self) -> int:
        return sum(
            getattr(self, name).nbytes
            for name in (
                "mem_read_buf",
                "mail_read_buf",
                "mem_ts_read_buf",
                "mail_ts_read_buf",
                "read_1idx_buf",
                "mem_write_buf",
                "mail_write_buf",
                "mem_ts_write_buf",
                "mail_ts_write_buf",
                "write_1idx_buf",
                "mail_write_1idx_buf",
                "read_status",
                "write_status",
            )
        )
