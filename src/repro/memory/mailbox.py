"""Mail cache with batched COMB semantics (paper §2.1, Eq. 8).

When an edge (u, v, e, t) appears, two mails are generated (Eq. 1–2):

    m_u = { s_u || s_v || Φ(t - t_u^-) || e_uv }

Because of the information-leak problem the mails are *cached* and only
applied to the memory when the node is next referenced — the "reversed
computation order".  Batching compounds this: all mails of one batch are
computed from the memory state *before* the batch (staleness) and COMB keeps
only one mail per node (information loss).  Both inaccuracies are therefore
inherent to this data structure, which is exactly what Figs. 2(a), 3 and 8
measure.

The mailbox stores the *raw* mail payload ``[s_self || s_other || e]`` plus
the mail timestamp; the time encoding Φ(t - t^-) is applied by the memory
updater at read time, when Δt is known.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class Mailbox:
    """One mail slot per node (COMB = most-recent, TGN-attn's choice) or a
    running mean over the batch (COMB = 'mean')."""

    def __init__(
        self,
        num_nodes: int,
        memory_dim: int,
        edge_dim: int = 0,
        comb: str = "recent",
    ) -> None:
        if comb not in ("recent", "mean"):
            raise ValueError(f"unknown COMB {comb!r}")
        self.num_nodes = num_nodes
        self.memory_dim = memory_dim
        self.edge_dim = edge_dim
        self.comb = comb
        self.mail_dim = 2 * memory_dim + edge_dim
        self.mail = np.zeros((num_nodes, self.mail_dim), dtype=np.float32)
        self.mail_time = np.zeros(num_nodes, dtype=np.float64)
        self.has_mail = np.zeros(num_nodes, dtype=bool)

    # ------------------------------------------------------------------ read
    def read(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Copies of (mail, mail_time, has_mail) for ``nodes``."""
        nodes = np.asarray(nodes, dtype=np.int64)
        return (
            self.mail[nodes].copy(),
            self.mail_time[nodes].copy(),
            self.has_mail[nodes].copy(),
        )

    # ----------------------------------------------------------------- write
    def deposit(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        src_memory: np.ndarray,
        dst_memory: np.ndarray,
        times: np.ndarray,
        edge_feats: Optional[np.ndarray] = None,
    ) -> None:
        """Deposit the two mails of each event in a batch, applying COMB.

        ``src_memory`` / ``dst_memory`` are the (stale) memory rows of the
        endpoints *before* this batch's update — per the paper, mails use
        "the outdated node memory at the last batch of graph events".
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        n = len(src)
        if not (len(dst) == len(times) == n):
            raise ValueError("event arrays must align")
        if n == 0:
            return
        if self.edge_dim:
            if edge_feats is None:
                raise ValueError("mailbox configured with edge features")
            ef = np.asarray(edge_feats, dtype=np.float32)
        else:
            ef = np.zeros((n, 0), dtype=np.float32)

        mail_src = np.concatenate([src_memory, dst_memory, ef], axis=1)
        mail_dst = np.concatenate([dst_memory, src_memory, ef], axis=1)
        nodes = np.concatenate([src, dst])
        mails = np.concatenate([mail_src, mail_dst], axis=0)
        stamps = np.concatenate([times, times])

        if self.comb == "recent":
            # Events are chronological; for equal timestamps later events win.
            # Fancy assignment applies duplicates in order, so writing the
            # concatenated (already time-ordered within src/dst halves) array
            # sorted by time keeps the most recent mail per node.
            order = np.argsort(stamps, kind="stable")
            nodes_o, mails_o, stamps_o = nodes[order], mails[order], stamps[order]
            self.mail[nodes_o] = mails_o
            self.mail_time[nodes_o] = stamps_o
            self.has_mail[nodes_o] = True
        else:  # mean over the batch's mails per node
            sums = np.zeros((self.num_nodes, self.mail_dim), dtype=np.float64)
            counts = np.zeros(self.num_nodes, dtype=np.int64)
            np.add.at(sums, nodes, mails.astype(np.float64))
            np.add.at(counts, nodes, 1)
            touched = counts > 0
            self.mail[touched] = (sums[touched] / counts[touched, None]).astype(np.float32)
            latest = np.zeros(self.num_nodes, dtype=np.float64)
            np.maximum.at(latest, nodes, stamps)
            self.mail_time[touched] = latest[touched]
            self.has_mail[touched] = True

    def write_raw(
        self, nodes: np.ndarray, mails: np.ndarray, times: np.ndarray
    ) -> None:
        """Direct slot overwrite — used by the daemon's write path."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(nodes) == 0:
            return
        self.mail[nodes] = np.asarray(mails, dtype=np.float32)
        self.mail_time[nodes] = np.asarray(times, dtype=np.float64)
        self.has_mail[nodes] = True

    # ------------------------------------------------------------------ misc
    def reset(self) -> None:
        self.mail.fill(0.0)
        self.mail_time.fill(0.0)
        self.has_mail.fill(False)

    def clone(self) -> "Mailbox":
        out = Mailbox(self.num_nodes, self.memory_dim, self.edge_dim, self.comb)
        out.mail[...] = self.mail
        out.mail_time[...] = self.mail_time
        out.has_mail[...] = self.has_mail
        return out

    def copy_from(self, other: "Mailbox") -> None:
        if (other.num_nodes, other.mail_dim) != (self.num_nodes, self.mail_dim):
            raise ValueError("mailbox shape mismatch")
        self.mail[...] = other.mail
        self.mail_time[...] = other.mail_time
        self.has_mail[...] = other.has_mail

    def nbytes(self) -> int:
        return self.mail.nbytes + self.mail_time.nbytes + self.has_mail.nbytes
