"""Dynamic node memory state (the ``s_v`` vectors of paper §2.1).

A :class:`NodeMemory` is a plain array store — the GRU that updates it lives
in ``repro.models.memory_updater``.  Memory parallelism (§3.2.3) keeps ``k``
independent :class:`NodeMemory` copies; :meth:`clone` and :meth:`copy_from`
support that.

The memory is *outside* the autograd graph: reads lift slices into leaf
Tensors (no BPTT through past batches, matching TGN) and writes store
detached arrays.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class NodeMemory:
    """Per-node memory vectors plus the last-update timestamps ``t^-``."""

    def __init__(self, num_nodes: int, dim: int) -> None:
        if num_nodes <= 0 or dim <= 0:
            raise ValueError("num_nodes and dim must be positive")
        self.num_nodes = num_nodes
        self.dim = dim
        self.memory = np.zeros((num_nodes, dim), dtype=np.float32)
        self.last_update = np.zeros(num_nodes, dtype=np.float64)

    # ------------------------------------------------------------------ ops
    def read(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return copies of (memory, last_update) rows for ``nodes``.

        Copies, not views: the caller may be a trainer whose writes must go
        through the serialized daemon path, never by aliasing.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        return self.memory[nodes].copy(), self.last_update[nodes].copy()

    def write(self, nodes: np.ndarray, values: np.ndarray, times: np.ndarray) -> None:
        """Overwrite memory rows and bump their last-update timestamps.

        Duplicate node ids within one write keep the *last* occurrence,
        matching numpy fancy-assignment semantics and the chronological
        ordering of events inside a batch.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(nodes) == 0:
            return
        values = np.asarray(values, dtype=np.float32)
        times = np.asarray(times, dtype=np.float64)
        if values.shape != (len(nodes), self.dim):
            raise ValueError(
                f"value shape {values.shape} != ({len(nodes)}, {self.dim})"
            )
        self.memory[nodes] = values
        self.last_update[nodes] = times

    def reset(self) -> None:
        """Zero everything (start of epoch, paper resets per epoch)."""
        self.memory.fill(0.0)
        self.last_update.fill(0.0)

    # ----------------------------------------------------------- replication
    def clone(self) -> "NodeMemory":
        out = NodeMemory(self.num_nodes, self.dim)
        out.memory[...] = self.memory
        out.last_update[...] = self.last_update
        return out

    def copy_from(self, other: "NodeMemory") -> None:
        if (other.num_nodes, other.dim) != (self.num_nodes, self.dim):
            raise ValueError("memory shape mismatch")
        self.memory[...] = other.memory
        self.last_update[...] = other.last_update

    def nbytes(self) -> int:
        return self.memory.nbytes + self.last_update.nbytes

    def __repr__(self) -> str:  # pragma: no cover
        return f"NodeMemory(V={self.num_nodes}, d={self.dim})"
