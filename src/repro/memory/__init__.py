"""repro.memory — dynamic node memory, mailbox, static memory, daemon."""

from .buffers import SharedBuffers
from .daemon import MemoryDaemon
from .diagnostics import (
    BatchingInaccuracy,
    inaccuracy_sweep,
    measure_batching_inaccuracy,
)
from .mailbox import Mailbox
from .node_memory import NodeMemory
from .static_memory import StaticNodeMemory

__all__ = [
    "NodeMemory",
    "Mailbox",
    "StaticNodeMemory",
    "MemoryDaemon",
    "SharedBuffers",
    "BatchingInaccuracy",
    "measure_batching_inaccuracy",
    "inaccuracy_sweep",
]
