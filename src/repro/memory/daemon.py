"""Memory daemon process (paper §3.3, Algorithm 1).

DistTGL serializes all node-memory access of an ``i × j`` trainer group
through a dedicated daemon instead of a cross-process lock.  The serialized
schedule for ``i × j = 2 × 2`` is::

    (R0 R1)(W0 W1)(R2 R3)(W2 W3)(R0 R1)(W0 W1) ...

i.e. the j sub-groups of i trainers alternate read-then-write in rank order;
requests *within* one bracket are unordered.  Trainers communicate through
:class:`~repro.memory.buffers.SharedBuffers` by staging payloads and flipping
``read_status`` / ``write_status`` flags; the daemon spin-waits on the flags,
applies the requests against the authoritative :class:`NodeMemory` +
:class:`Mailbox`, fills result buffers and resets the flags.

Two execution modes:

* ``serial`` — the schedule is driven synchronously by the caller
  (:meth:`MemoryDaemon.serve_reads` / :meth:`serve_writes`).  Deterministic;
  used by the training simulator.
* ``threaded`` — a real daemon thread runs Algorithm 1 with spin-waits,
  concurrent with trainer threads.  Used by the system tests to demonstrate
  the synchronization protocol is live and serializes correctly.

Every served request is appended to ``access_log`` as ``(op, rank)`` so the
tests can assert the exact (R…)(W…) bracket order.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple

import numpy as np

from .buffers import SharedBuffers
from .mailbox import Mailbox
from .node_memory import NodeMemory

_SPIN_SLEEP = 1e-5


class _DaemonStopped(Exception):
    """Internal: the daemon was asked to stop while spin-waiting."""


class MemoryDaemon:
    """Serves serialized memory/mail reads and writes for one trainer group.

    Parameters
    ----------
    memory, mailbox:
        The authoritative state owned by this daemon (one copy per memory-
        parallel group; the ``k`` copies of §3.2.3 are ``k`` daemons).
    i, j:
        Mini-batch and epoch parallelism inside this group; ``i * j`` ranks.
    read_capacity / write_capacity:
        Max nodes per read (``bs·(d+1)`` in the paper) and per write (``bs``).
    """

    def __init__(
        self,
        memory: NodeMemory,
        mailbox: Mailbox,
        i: int = 1,
        j: int = 1,
        read_capacity: int = 4096,
        write_capacity: int = 2048,
    ) -> None:
        if i <= 0 or j <= 0:
            raise ValueError("i and j must be positive")
        self.memory = memory
        self.mailbox = mailbox
        self.i = i
        self.j = j
        self.num_ranks = i * j
        self.buffers = SharedBuffers(
            self.num_ranks,
            read_capacity,
            write_capacity,
            memory.dim,
            mailbox.mail_dim,
        )
        self.access_log: List[Tuple[str, int]] = []
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------- requests
    def request_read(self, rank: int, nodes: np.ndarray) -> None:
        """Trainer side: stage a read and raise the flag."""
        if self.buffers.read_status[rank] != 0:
            raise RuntimeError(f"rank {rank} already has a pending read")
        self.buffers.stage_read(rank, np.asarray(nodes, dtype=np.int64))
        self.buffers.read_status[rank] = 1

    def wait_read(self, rank: int, timeout: float = 30.0):
        """Trainer side: spin until the daemon served the read; return copies
        of (memory, last_update, mail, mail_time)."""
        deadline = time.monotonic() + timeout
        while self.buffers.read_status[rank] != 0:
            if time.monotonic() > deadline:
                raise TimeoutError(f"read for rank {rank} not served")
            time.sleep(_SPIN_SLEEP)
        return self.buffers.read_result(rank)

    def request_write(
        self,
        rank: int,
        mem_nodes: np.ndarray,
        mem_values: np.ndarray,
        mem_times: np.ndarray,
        mail_nodes: np.ndarray,
        mail_values: np.ndarray,
        mail_times: np.ndarray,
    ) -> None:
        if self.buffers.write_status[rank] != 0:
            raise RuntimeError(f"rank {rank} already has a pending write")
        self.buffers.stage_write(
            rank, mem_nodes, mem_values, mem_times, mail_nodes, mail_values, mail_times
        )
        self.buffers.write_status[rank] = 1

    def wait_write(self, rank: int, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while self.buffers.write_status[rank] != 0:
            if time.monotonic() > deadline:
                raise TimeoutError(f"write for rank {rank} not applied")
            time.sleep(_SPIN_SLEEP)

    # -------------------------------------------------------- daemon service
    def _serve_read(self, rank: int) -> None:
        nodes = self.buffers.read_request(rank)
        mem, mem_ts = self.memory.read(nodes)
        mail, mail_ts, has_mail = self.mailbox.read(nodes)
        # Missing mail is encoded as mail_time = -1 in the shared buffer
        # (valid timestamps are >= 0 after normalisation).
        mail_ts = np.where(has_mail, mail_ts, -1.0)
        self.buffers.fill_read_result(rank, mem, mem_ts, mail, mail_ts)
        self.access_log.append(("R", rank))
        self.buffers.read_status[rank] = 0

    def _serve_write(self, rank: int) -> None:
        (
            mem_nodes,
            mem_values,
            mem_times,
            mail_nodes,
            mail_values,
            mail_times,
        ) = self.buffers.write_request(rank)
        self.memory.write(mem_nodes, mem_values, mem_times)
        self.mailbox.write_raw(mail_nodes, mail_values, mail_times)
        self.access_log.append(("W", rank))
        self.buffers.write_status[rank] = 0

    def _group_ranks(self, group: int) -> range:
        return range(group * self.i, (group + 1) * self.i)

    # serial mode ------------------------------------------------------------
    def serve_reads(self, group: int, timeout: float = 30.0) -> None:
        """Serve the pending reads of one sub-group (bracket ``(R…)``)."""
        for rank in self._group_ranks(group):
            self._await_flag(self.buffers.read_status, rank, timeout)
            self._serve_read(rank)

    def serve_writes(self, group: int, timeout: float = 30.0) -> None:
        for rank in self._group_ranks(group):
            self._await_flag(self.buffers.write_status, rank, timeout)
            self._serve_write(rank)

    def _await_flag(self, flags: np.ndarray, rank: int, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while flags[rank] != 1:
            if self._stop.is_set():
                raise _DaemonStopped
            if time.monotonic() > deadline:
                raise TimeoutError(f"rank {rank} never issued its request")
            time.sleep(_SPIN_SLEEP)

    # threaded mode -----------------------------------------------------------
    def run_epochs(
        self,
        iterations_per_epoch: int,
        epochs: int = 1,
        skip_first_read: bool = True,
    ) -> None:
        """Algorithm 1 main loop (blocking).

        Per epoch: reset state, then for every iteration serve each
        sub-group's reads then writes in rank order.  The first read of each
        epoch is skipped when ``skip_first_read`` — "the results are always
        all zero matrices right after the initialization" — and trainers
        must not issue it either.
        """
        try:
            for _ in range(epochs):
                self.memory.reset()
                self.mailbox.reset()
                for iteration in range(iterations_per_epoch):
                    for group in range(self.j):
                        if self._stop.is_set():
                            return
                        if iteration > 0 or not skip_first_read:
                            self.serve_reads(group)
                        self.serve_writes(group)
        except _DaemonStopped:
            return

    def start(self, iterations_per_epoch: int, epochs: int = 1, skip_first_read: bool = True):
        """Launch :meth:`run_epochs` on a daemon thread."""
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError("daemon already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.run_epochs,
            args=(iterations_per_epoch, epochs, skip_first_read),
            daemon=True,
        )
        self._thread.start()
        return self._thread

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def join(self, timeout: float = 60.0) -> None:
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise TimeoutError("daemon did not finish")
            self._thread = None

    # ------------------------------------------------------------------ misc
    def bracket_log(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """Collapse the access log into (op, sorted ranks) brackets."""
        out: List[Tuple[str, Tuple[int, ...]]] = []
        for op, rank in self.access_log:
            if out and out[-1][0] == op and len(out[-1][1]) < self.i:
                out[-1] = (op, tuple(sorted(out[-1][1] + (rank,))))
            else:
                out.append((op, (rank,)))
        return out
