"""Quantifying the two node-memory inaccuracies of batched training (Fig. 3).

The paper's Figure 3 illustrates — without measuring — the two errors that
batching introduces into the node memory:

* **staleness**: because of the reversed computation order, the memory used
  at an event is the state from *before* the previous relevant mail, i.e.
  it lags the event time;
* **information loss**: COMB keeps one mail per node per batch, so all but
  the last intra-batch interaction of a node vanish, and the surviving
  mails were built from outdated endpoint memory.

This module measures both on a real event stream, which is what turns the
schematic into numbers (and explains the Fig. 2(a) accuracy decay
mechanically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..graph.temporal_graph import TemporalGraph


@dataclass
class BatchingInaccuracy:
    """Aggregate staleness / information-loss metrics for one batch size."""

    batch_size: int
    num_events: int
    mails_generated: int          # 2 per event
    mails_surviving: int          # after COMB (one slot per touched node/batch)
    mean_staleness: float         # mean(t_event - t_last_update) over reads
    p90_staleness: float

    @property
    def information_loss(self) -> float:
        """Fraction of generated mails COMB throws away."""
        if not self.mails_generated:
            return 0.0
        return 1.0 - self.mails_surviving / self.mails_generated


def measure_batching_inaccuracy(
    graph: TemporalGraph,
    batch_size: int,
    max_events: int | None = None,
) -> BatchingInaccuracy:
    """Replay the mailbox protocol at ``batch_size`` and measure both errors.

    The replay tracks, per node, the timestamp of the mail that would update
    its memory (COMB = most-recent, updates applied at the *next* batch that
    touches the node — the reversed computation order).  Staleness of a read
    at event time ``t`` is ``t - last_update``; information loss counts the
    mails whose slot is overwritten before ever being consumed.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    e = graph.num_events if max_events is None else min(max_events, graph.num_events)

    last_update = np.zeros(graph.num_nodes)   # memory timestamp per node
    pending_mail_time = np.full(graph.num_nodes, -1.0)  # cached mail, -1 = none

    staleness: List[float] = []
    mails_generated = 0
    mails_surviving = 0

    for start in range(0, e, batch_size):
        stop = min(start + batch_size, e)
        src = graph.src[start:stop]
        dst = graph.dst[start:stop]
        times = graph.timestamps[start:stop]
        touched = np.concatenate([src, dst])
        stamp = np.concatenate([times, times])

        # 1. consume cached mails for touched nodes (memory update step)
        uniq = np.unique(touched)
        has_pending = pending_mail_time[uniq] >= 0
        consumed = uniq[has_pending]
        last_update[consumed] = pending_mail_time[consumed]
        pending_mail_time[consumed] = -1.0
        mails_surviving += len(consumed)

        # 2. embeddings read memory: staleness vs the event timestamps
        staleness.extend((stamp - last_update[touched]).tolist())

        # 3. deposit this batch's mails; COMB keeps the most recent per node
        mails_generated += len(touched)
        # fancy assignment in chronological order = most-recent wins
        order = np.argsort(stamp, kind="stable")
        pending_mail_time[touched[order]] = stamp[order]

    # mails still pending at the end were never consumed; they are neither
    # lost nor surviving — exclude them from the generated count
    still_pending = int((pending_mail_time >= 0).sum())
    mails_generated -= still_pending

    arr = np.asarray(staleness)
    return BatchingInaccuracy(
        batch_size=batch_size,
        num_events=e,
        mails_generated=mails_generated,
        mails_surviving=mails_surviving,
        mean_staleness=float(arr.mean()) if arr.size else 0.0,
        p90_staleness=float(np.percentile(arr, 90)) if arr.size else 0.0,
    )


def inaccuracy_sweep(
    graph: TemporalGraph,
    batch_sizes,
    max_events: int | None = None,
) -> Dict[int, BatchingInaccuracy]:
    """Measure the Fig. 3 inaccuracies across a batch-size grid."""
    return {
        bs: measure_batching_inaccuracy(graph, bs, max_events=max_events)
        for bs in batch_sizes
    }
