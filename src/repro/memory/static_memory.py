"""Static node memory (paper §3.1 — DistTGL's model contribution).

The paper adds a *static* node memory alongside the dynamic GRU memory:
"we use learnable node embeddings pre-trained with the same task" — i.e.
the temporal-link-prediction objective with the temporal part stripped out.
The static memory explicitly captures batch-size-irrelevant information,
which both raises accuracy (Fig. 6) and improves data-parallel scaling.

:class:`StaticNodeMemory` owns the embedding table and a tiny bilinear-MLP
scorer used only during pre-training; after :meth:`pretrain` the table is
frozen (it becomes an input feature of the TGN, like the paper's 100-dim
pre-trained features in Table 2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.negative import NegativeSampler
from ..graph.temporal_graph import TemporalGraph
from ..nn import Adam, Embedding, Linear, Module, Tensor, bce_with_logits, concat


class _StaticScorer(Module):
    """score(u, v) = MLP([emb_u || emb_v]) — the pre-training head."""

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.fc1 = Linear(2 * dim, dim, rng=rng)
        self.fc2 = Linear(dim, 1, rng=rng)

    def forward(self, eu: Tensor, ev: Tensor) -> Tensor:
        h = concat([eu, ev], axis=1)
        return self.fc2(self.fc1(h).relu()).reshape(-1)


class StaticNodeMemory(Module):
    """Pre-trainable static embedding table for all nodes."""

    def __init__(
        self,
        num_nodes: int,
        dim: int = 100,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_nodes = num_nodes
        self.dim = dim
        self.table = Embedding(num_nodes, dim, rng=rng, std=0.1)
        self.scorer = _StaticScorer(dim, rng)
        self._rng = rng
        self.trained = False

    # ------------------------------------------------------------------ API
    def lookup(self, nodes: np.ndarray) -> Tensor:
        """Frozen lookup used inside the TGN forward pass."""
        emb = self.table.weight.data[np.asarray(nodes, dtype=np.int64)]
        return Tensor(emb)  # leaf, no grad: table is frozen after pretraining

    def lookup_trainable(self, nodes: np.ndarray) -> Tensor:
        return self.table(nodes)

    def as_array(self) -> np.ndarray:
        return self.table.weight.data

    # ------------------------------------------------------------- training
    def pretrain(
        self,
        graph: TemporalGraph,
        train_end: Optional[int] = None,
        epochs: int = 10,
        batch_size: int = 512,
        lr: float = 1e-2,
        negatives: int = 1,
        seed: int = 0,
    ) -> float:
        """Pre-train on training-range edges with time stripped (§3.1, §4.0.1).

        Only events before ``train_end`` supervise the table, so the static
        memory "does not include any information in the test set".
        Mini-batches are drawn *stochastically* ("pre-train 10 epochs with
        stochastically selected mini-batches"), not chronologically — the
        static objective is order-free.  Returns the final epoch's mean loss.
        """
        end = train_end if train_end is not None else graph.num_events
        end = min(end, graph.num_events)
        rng = np.random.default_rng(seed)
        neg_sampler = NegativeSampler(graph, seed=seed)
        opt = Adam(self.parameters(), lr=lr)
        final_loss = float("nan")
        for _ in range(epochs):
            order = rng.permutation(end)
            losses = []
            for start in range(0, end, batch_size):
                idx = order[start : start + batch_size]
                u = graph.src[idx]
                v_pos = graph.dst[idx]
                v_neg = neg_sampler.sample(len(idx) * negatives, rng=rng)
                u_all = np.concatenate([u, np.repeat(u, negatives)])
                v_all = np.concatenate([v_pos, v_neg])
                labels = np.concatenate(
                    [np.ones(len(idx)), np.zeros(len(idx) * negatives)]
                ).astype(np.float32)
                eu = self.table(u_all)
                ev = self.table(v_all)
                logits = self.scorer(eu, ev)
                loss = bce_with_logits(logits, labels)
                opt.zero_grad()
                loss.backward()
                opt.step()
                losses.append(float(loss.data))
            final_loss = float(np.mean(losses))
        self.trained = True
        return final_loss
