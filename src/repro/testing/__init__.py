"""Testing & fault-injection subsystem.

Two pieces, usable independently:

* :mod:`repro.testing.failpoints` — deterministic, env-activated failure
  injection (``failpoints.enable("worker.step:3", kind="crash", rank=1)``)
  that spawned runtime workers honor;
* :mod:`repro.testing.chaos` — the chaos driver + differential checker:
  run a plan with failpoints armed, replay it unfaulted, and assert the
  two runs are **bitwise identical** (losses, metrics, weights, node
  memory) — the recovery-correctness oracle the bitwise local≡process
  contract makes possible.  :class:`~repro.testing.chaos.ChaosSchedule`
  generalizes hand-picked schedules to seed-reproducible *random* ones
  (multi-fault, finalization window, machine loss) for the CI fuzz matrix.

``chaos`` pulls in the full ``repro.api`` stack, so it is imported lazily:
worker processes that only need ``failpoints`` stay light.
"""

from . import failpoints

__all__ = [
    "failpoints",
    "ChaosReport",
    "ChaosSchedule",
    "chaos_fit",
    "chaos_schedules",
    "differential_chaos_fit",
    "differential_chaos_serve",
    "run_chaos_schedule",
    "assert_sessions_bitwise_equal",
]

_CHAOS_NAMES = {
    "ChaosReport",
    "ChaosSchedule",
    "chaos_fit",
    "chaos_schedules",
    "differential_chaos_fit",
    "differential_chaos_serve",
    "run_chaos_schedule",
    "assert_sessions_bitwise_equal",
}


def __getattr__(name):
    if name in _CHAOS_NAMES:
        from . import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
