"""Chaos driver + differential checker for the fault-tolerant runtime.

The runtime's recovery claim is unusually strong — a fit that loses a rank
mid-epoch must finish **bitwise identical** to one that never saw a fault —
and the bitwise local≡process contract from the runtime backend makes that
claim *testable by exact equality* instead of tolerance bands.  This module
packages the test harness:

* :func:`chaos_fit` — run ``Session.fit(backend="process")`` (or
  ``backend="fabric"``, where ``fabric.machine`` failpoints SIGKILL a
  whole host agent) with a set of failpoints armed (and reliably cleared
  afterwards, pass or fail);
* :func:`differential_chaos_fit` — the full oracle: run the faulted
  process fit *and* an unfaulted reference fit of the same config, then
  compare everything observable (loss history, metrics, model weights,
  optimizer moments, node memory, mailbox state) for exact equality;
* :func:`assert_sessions_bitwise_equal` — the state comparator, reusable
  against any two sessions that should agree;
* :class:`ChaosSchedule` — a seed-reproducible *randomized* fault
  schedule drawing site (training step, finalization window, whole
  machine), kind, rank and iteration, including multi-fault schedules;
  :func:`run_chaos_schedule` feeds one straight into the differential
  oracle.  ``repro.cli chaos`` and the CI ``chaos-matrix`` job sweep
  seeds so every runtime change is fuzzed against the full fault space.

Example::

    from repro.testing import differential_chaos_fit

    report = differential_chaos_fit(
        cfg,
        {"worker.step:3": ("crash", 1)},     # SIGKILL rank 1 at iteration 3
        max_iterations=8,
        recovery=RecoveryPolicy(collective_timeout=15.0),
    )
    assert report.recovered and report.bitwise_equal, report.differences

Randomized::

    from repro.testing import ChaosSchedule, run_chaos_schedule

    schedule = ChaosSchedule.random(1234, world=2, max_iteration=8)
    report = run_chaos_schedule(cfg, schedule, timeout=120.0)
    assert report.bitwise_equal, (schedule.describe(), report.differences)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..api.config import ExperimentConfig
from ..api.session import Session
from . import failpoints


@dataclass
class ChaosReport:
    """Outcome of one differential chaos run."""

    recovered: bool                      #: the faulted fit completed
    bitwise_equal: bool                  #: faulted == reference, exactly
    differences: List[str] = field(default_factory=list)
    faulted_result: Optional[object] = None
    reference_result: Optional[object] = None


def chaos_fit(
    config: ExperimentConfig,
    faults: Dict[str, Tuple[str, Optional[int]]],
    *,
    max_iterations: Optional[int] = None,
    epochs: Optional[int] = None,
    recovery=None,
    timeout: Optional[float] = None,
    backend: str = "process",
):
    """Run a process- (or fabric-) backend fit with ``faults`` armed.

    ``faults`` maps failpoint specs to ``(kind, rank)`` — e.g.
    ``{"worker.step:3": ("crash", 1)}``.  With ``backend="fabric"`` the
    ``fabric.machine`` site is also live, so a spec like
    ``{"fabric.machine:2": ("crash", 5)}`` SIGKILLs rank 5's *entire host
    agent* (children included) at iteration 2 — the machine-loss drill.
    Failpoints are cleared on exit even when the fit (or an assertion
    around it) raises, so an armed crash can never leak into the next
    test.  Returns ``(session, result)``.
    """
    sess = Session(config)
    with failpoints.scoped(faults):
        kwargs = dict(
            max_iterations=max_iterations, epochs=epochs, backend=backend
        )
        if recovery is not None:
            kwargs["recovery"] = recovery
        if timeout is not None:
            kwargs["timeout"] = timeout
        result = sess.fit(**kwargs)
    return sess, result


def differential_chaos_fit(
    config: ExperimentConfig,
    faults: Dict[str, Tuple[str, Optional[int]]],
    *,
    max_iterations: Optional[int] = None,
    epochs: Optional[int] = None,
    recovery=None,
    timeout: Optional[float] = None,
    reference_backend: str = "local",
    backend: str = "process",
) -> ChaosReport:
    """The recovery oracle: a faulted process fit vs. an unfaulted replay.

    The reference run executes the *same* config and iteration budget with
    no failpoints armed — on the logical trainer by default (the semantic
    reference, which also cross-checks the backend equivalence contract),
    or on a clean process fleet with ``reference_backend="process"``.
    ``backend="fabric"`` runs the faulted fit on the multi-host fabric
    instead (whole-machine-loss drills included).
    """
    faulted_sess, faulted_res = chaos_fit(
        config,
        faults,
        max_iterations=max_iterations,
        epochs=epochs,
        recovery=recovery,
        timeout=timeout,
        backend=backend,
    )
    ref_sess = Session(config)
    ref_kwargs = dict(max_iterations=max_iterations, epochs=epochs)
    if reference_backend == "process":
        ref_kwargs["backend"] = "process"
        if timeout is not None:
            ref_kwargs["timeout"] = timeout
    ref_res = ref_sess.fit(**ref_kwargs)

    differences = compare_sessions(faulted_sess, ref_sess)
    differences += _compare_results(faulted_res, ref_res)
    return ChaosReport(
        recovered=True,
        bitwise_equal=not differences,
        differences=differences,
        faulted_result=faulted_res,
        reference_result=ref_res,
    )


# ------------------------------------------------- randomized chaos drawer
#: sites the random drawer samples; ``fabric.machine`` joins for fabric runs
CHAOS_SITES = ("worker.step", "worker.finalize")
#: every failure mode the runtime claims to absorb
CHAOS_KINDS = ("crash", "wedge", "pipe_drop", "exc")


@dataclass(frozen=True)
class ChaosSchedule:
    """A seed-reproducible randomized fault schedule.

    ``entries`` is a tuple of ``(point, kind, rank)`` triples in the
    failpoint grammar (``site:hit@rank``) — ranks are distinct, so a
    schedule with several entries is a genuine concurrent/sequential
    multi-fault drill.  The same ``(seed, world, max_iteration, backend,
    max_faults)`` always draws the same schedule: a CI failure names a
    seed, and the seed replays the exact fault sequence locally.
    """

    seed: int
    backend: str
    world: int
    max_iteration: int
    entries: Tuple[Tuple[str, str, int], ...]

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        world: int = 2,
        max_iteration: int = 8,
        backend: str = "process",
        max_faults: int = 2,
    ) -> "ChaosSchedule":
        """Draw a schedule: 1..``max_faults`` faults on distinct ranks,
        each an independent (site, kind, iteration) sample.  Sites cover
        the training loop (step-keyed, any iteration), the finalization
        window (``worker.finalize``, after the end barrier) and — on the
        fabric backend — whole-machine loss (``fabric.machine``)."""
        rng = np.random.default_rng(seed)
        n_faults = int(rng.integers(1, max_faults + 1))
        ranks = [int(r) for r in rng.choice(world, size=min(n_faults, world),
                                            replace=False)]
        entries = []
        for rank in ranks:
            if rng.random() < 0.25:
                site = "worker.finalize"
            elif backend == "fabric" and rng.random() < 0.25:
                site = "fabric.machine"
            else:
                site = "worker.step"
            if site == "worker.finalize":
                # hit-counter keyed: the first execution past the end barrier
                hit = 1
                kind = str(rng.choice(CHAOS_KINDS))
            elif site == "fabric.machine":
                # the site's callback SIGKILLs the whole host agent
                hit = int(rng.integers(1, max_iteration))
                kind = "crash"
            else:
                hit = int(rng.integers(0, max_iteration))
                kind = str(rng.choice(CHAOS_KINDS))
            entries.append((f"{site}:{hit}@{rank}", kind, rank))
        return cls(
            seed=int(seed),
            backend=backend,
            world=int(world),
            max_iteration=int(max_iteration),
            entries=tuple(entries),
        )

    def to_faults(self) -> Dict[str, Tuple[str, Optional[int]]]:
        """The ``{point: (kind, rank)}`` dict :func:`chaos_fit` takes —
        rank-suffixed points, so same-iteration faults on different ranks
        never collide."""
        return {point: (kind, rank) for point, kind, rank in self.entries}

    def describe(self) -> str:
        faults = ", ".join(f"{p}={k}" for p, k, _ in self.entries)
        return (
            f"seed={self.seed} backend={self.backend} world={self.world} "
            f"iters={self.max_iteration} faults=[{faults}]"
        )

    def to_dict(self) -> dict:
        """JSON-ready form (the CI artifact written for a failing seed)."""
        return {
            "seed": self.seed,
            "backend": self.backend,
            "world": self.world,
            "max_iteration": self.max_iteration,
            "entries": [list(e) for e in self.entries],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSchedule":
        return cls(
            seed=int(data["seed"]),
            backend=str(data["backend"]),
            world=int(data["world"]),
            max_iteration=int(data["max_iteration"]),
            entries=tuple(
                (str(p), str(k), int(r)) for p, k, r in data["entries"]
            ),
        )


def chaos_schedules(
    backends: Tuple[str, ...] = ("process",),
    *,
    world: int = 2,
    max_iteration: int = 8,
    max_faults: int = 2,
):
    """A hypothesis strategy over :class:`ChaosSchedule` (property tests
    draw seeds; shrinking walks toward small seeds, which is exactly the
    reproduction artifact a failure should hand back)."""
    from hypothesis import strategies as st

    return st.builds(
        lambda seed, backend: ChaosSchedule.random(
            seed,
            world=world,
            max_iteration=max_iteration,
            backend=backend,
            max_faults=max_faults,
        ),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.sampled_from(list(backends)),
    )


def run_chaos_schedule(
    config: ExperimentConfig,
    schedule: ChaosSchedule,
    *,
    recovery=None,
    timeout: Optional[float] = None,
    reference_backend: str = "local",
) -> ChaosReport:
    """Run one randomized schedule through the differential oracle.

    The default :class:`~repro.runtime.RecoveryPolicy` budgets one restart
    per scheduled fault plus one (sequential faults each open a new
    episode), with short collective timeouts so wedge faults are detected
    in CI time.
    """
    if recovery is None:
        from ..runtime.launcher import RecoveryPolicy

        recovery = RecoveryPolicy(
            max_restarts=len(schedule.entries) + 1,
            collective_timeout=8.0,
            park_grace=10.0,
        )
    return differential_chaos_fit(
        config,
        schedule.to_faults(),
        max_iterations=schedule.max_iteration,
        recovery=recovery,
        timeout=timeout,
        backend=schedule.backend,
        reference_backend=reference_backend,
    )


# ------------------------------------------------------------- comparators
def compare_sessions(a: Session, b: Session) -> List[str]:
    """Every state difference between two sessions (empty == bitwise equal):
    model + decoder weights, Adam moments, and per-group node memory /
    mailbox contents and cursors."""
    diffs: List[str] = []
    for (name_a, p_a), (name_b, p_b) in zip(
        list(a.model.named_parameters()) + list(a.decoder.named_parameters()),
        list(b.model.named_parameters()) + list(b.decoder.named_parameters()),
    ):
        if name_a != name_b:
            diffs.append(f"parameter order mismatch: {name_a} vs {name_b}")
        elif not np.array_equal(p_a.data, p_b.data):
            diffs.append(f"weights differ: {name_a}")
    m_a, v_a, s_a = a.trainer.optimizer.state_arrays()
    m_b, v_b, s_b = b.trainer.optimizer.state_arrays()
    if s_a != s_b:
        diffs.append(f"optimizer step differs: {s_a} vs {s_b}")
    for idx, (ma, mb) in enumerate(zip(m_a, m_b)):
        if not np.array_equal(ma, mb):
            diffs.append(f"Adam m moment differs: param {idx}")
    for idx, (va, vb) in enumerate(zip(v_a, v_b)):
        if not np.array_equal(va, vb):
            diffs.append(f"Adam v moment differs: param {idx}")
    for g_a, g_b in zip(a.trainer.groups, b.trainer.groups):
        tag = f"group {g_a.index}"
        if not np.array_equal(g_a.memory.memory, g_b.memory.memory):
            diffs.append(f"{tag}: node memory differs")
        if not np.array_equal(g_a.memory.last_update, g_b.memory.last_update):
            diffs.append(f"{tag}: last_update differs")
        if not np.array_equal(g_a.mailbox.mail, g_b.mailbox.mail):
            diffs.append(f"{tag}: mailbox differs")
        if (g_a.position, g_a.prev_batch, g_a.sweeps_completed) != (
            g_b.position,
            g_b.prev_batch,
            g_b.sweeps_completed,
        ):
            diffs.append(f"{tag}: cursors differ")
    return diffs


def _compare_results(a, b) -> List[str]:
    diffs: List[str] = []
    if len(a.history) != len(b.history):
        diffs.append(f"history length differs: {len(a.history)} vs {len(b.history)}")
        return diffs
    for h_a, h_b in zip(a.history, b.history):
        if (h_a.iteration, h_a.train_loss, h_a.val_metric) != (
            h_b.iteration,
            h_b.train_loss,
            h_b.val_metric,
        ):
            diffs.append(f"history point differs at iteration {h_a.iteration}")
    if a.test_metric != b.test_metric:
        diffs.append(f"test metric differs: {a.test_metric} vs {b.test_metric}")
    if a.iterations_run != b.iterations_run:
        diffs.append(
            f"iterations_run differs: {a.iterations_run} vs {b.iterations_run}"
        )
    return diffs


def differential_chaos_serve(
    config: ExperimentConfig,
    faults: Dict[str, Tuple[str, Optional[int]]],
    *,
    replicas: int = 2,
    queries_per_phase: int = 3,
    candidates: int = 8,
    ingest_chunks: int = 2,
    fit_iterations: Optional[int] = 6,
    timeout: float = 60.0,
) -> ChaosReport:
    """The serving recovery oracle: a faulted process fleet vs. a clean
    single-replica threaded cluster on the same request/ingest schedule.

    ``faults`` arms ``serve.replica`` failpoints (e.g.
    ``{"serve.replica:2": ("crash", 1)}`` SIGKILLs replica 1 on its second
    request) around a :class:`~repro.runtime.serving.ProcessServingCluster`
    run that interleaves ingest batches with ranking queries.  A killed
    replica is respawned, caught up from the graph tail, and its
    outstanding requests replayed — so every response must still match the
    unfaulted reference **byte for byte** (each query is flushed alone on
    both sides, pinning batch composition).  The report's
    ``faulted_result`` carries the process cluster's stats (recoveries,
    completions) for assertions beyond equality.
    """
    sess = Session(config)
    sess.fit(max_iterations=fit_iterations)
    chunks = list(sess.held_out_stream())[:ingest_chunks]
    rng_seed = config.data.seed + 99

    def run_schedule(cluster, wait_timeout: float) -> List[bytes]:
        rng = np.random.default_rng(rng_seed)
        blobs: List[bytes] = []
        for phase in range(len(chunks) + 1):
            if phase > 0:
                cluster.ingest(*chunks[phase - 1])
            for _ in range(queries_per_phase):
                src = int(rng.integers(0, cluster.graph.num_nodes))
                cands = rng.integers(0, cluster.graph.num_nodes, size=candidates)
                at = float(cluster.graph.timestamps[-1]) + 1.0
                handle = cluster.submit_rank(src, cands, at)
                cluster.flush_all()
                blobs.append(handle.wait(wait_timeout).tobytes())
        return blobs

    with failpoints.scoped(faults):
        with sess.serve(
            replicas=replicas, process_replicas=True, max_delay_ms=10_000.0
        ) as proc:
            faulted = run_schedule(proc, timeout)
            proc_stats = proc.stats

    reference = run_schedule(sess.serve(replicas=1, max_delay_ms=10_000.0), timeout)

    differences = [
        f"query {i}: faulted response differs from reference"
        for i, (a, b) in enumerate(zip(faulted, reference))
        if a != b
    ]
    if len(faulted) != len(reference):
        differences.append(
            f"response count differs: {len(faulted)} vs {len(reference)}"
        )
    return ChaosReport(
        recovered=len(faulted) == (len(chunks) + 1) * queries_per_phase,
        bitwise_equal=not differences,
        differences=differences,
        faulted_result=proc_stats,
        reference_result=None,
    )


def assert_sessions_bitwise_equal(a: Session, b: Session) -> None:
    """Raise ``AssertionError`` listing every state difference, if any."""
    diffs = compare_sessions(a, b)
    if diffs:
        raise AssertionError(
            "sessions are not bitwise equal:\n  " + "\n  ".join(diffs)
        )
