"""Deterministic failpoint injection for the process runtime.

A *failpoint* is a named site in the code (``failpoints.fire("worker.step",
...)``) that tests can arm to misbehave deterministically::

    from repro.testing import failpoints

    failpoints.enable("worker.step:3", kind="crash", rank=1)   # SIGKILL
    failpoints.enable("worker.step:5", kind="wedge")           # hang forever
    failpoints.enable("worker.step:2@0", kind="pipe_drop")     # dead pipes

Activation crosses process boundaries through the ``REPRO_FAILPOINTS``
environment variable: :func:`enable` arms the calling process *and* exports
the spec, so workers spawned by the runtime launcher (``spawn`` start
method inherits the environment) honor the same schedule.  This is what
makes chaos tests reproducible — the failure always lands at the same
site, step and rank, never "somewhere around iteration 3".

Spec syntax (one spec, also the env-var element; specs join with ``;``)::

    site:hit[@rank]=kind

``site``
    The instrumented location, e.g. ``worker.step``.
``hit``
    *When* to fire.  Sites that pass ``step=`` to :func:`fire` (the worker
    training loop passes its global iteration) match ``hit`` against that
    value; sites that don't are matched against a per-process hit counter
    (the ``hit``-th execution of the site, 1-based).
``rank``
    Optional rank scope; omitted = any rank.
``kind``
    ``crash``      — ``SIGKILL`` the process (no cleanup, no error frame:
                     the hard-death path the launcher must survive).  A
                     site may pass a ``crash`` callback to scope the blast
                     radius — the fabric worker's ``fabric.machine`` site
                     SIGKILLs its whole host agent (children included)
                     instead of just itself, the machine-loss drill;
    ``wedge``      — spin forever (the process stays alive but makes no
                     progress: the timeout-detection path);
    ``pipe_drop``  — invoke the site's ``pipe_drop`` callback (the worker
                     passes one that closes its collective channels) and
                     continue: the next collective op fails like a dead
                     network link;
    ``exc``        — raise :class:`FailpointError` (an ordinary worker
                     exception: the error-frame path).

Every spec fires **once per process**.  A respawned worker starts with a
fresh process, so the launcher neutralizes inherited failpoints on the
ranks it restarts (``neutralize()``) — a crash failpoint must take a rank
down once, not turn every restart into a crash loop.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

ENV_VAR = "REPRO_FAILPOINTS"

KINDS = ("crash", "wedge", "pipe_drop", "exc")


class FailpointError(RuntimeError):
    """Raised by ``exc`` failpoints (and after a ``pipe_drop`` misfire)."""


@dataclass(frozen=True)
class FailpointSpec:
    """One armed failpoint: where, when, for whom, and what happens."""

    site: str
    hit: int
    kind: str
    rank: Optional[int] = None

    def encode(self) -> str:
        at = f"@{self.rank}" if self.rank is not None else ""
        return f"{self.site}:{self.hit}{at}={self.kind}"

    @classmethod
    def parse(cls, text: str) -> "FailpointSpec":
        text = text.strip()
        if "=" not in text:
            raise ValueError(f"failpoint spec {text!r} missing '=kind'")
        point, kind = text.rsplit("=", 1)
        if kind not in KINDS:
            raise ValueError(f"unknown failpoint kind {kind!r}; choose from {KINDS}")
        rank: Optional[int] = None
        if "@" in point:
            point, rank_s = point.rsplit("@", 1)
            try:
                rank = int(rank_s)
            except ValueError:
                raise ValueError(f"bad rank in failpoint spec {text!r}") from None
        if ":" not in point:
            raise ValueError(f"failpoint spec {text!r} missing ':hit'")
        site, hit_s = point.rsplit(":", 1)
        if not site:
            raise ValueError(f"failpoint spec {text!r} has an empty site")
        try:
            hit = int(hit_s)
        except ValueError:
            raise ValueError(f"bad hit count in failpoint spec {text!r}") from None
        return cls(site=site, hit=hit, kind=kind, rank=rank)


class FailpointRegistry:
    """Process-local view of the armed failpoints.

    The module-level singleton (:data:`failpoints` via the module itself)
    is what production code and tests use; independent instances exist for
    unit-testing the registry.
    """

    def __init__(self) -> None:
        self._specs: List[FailpointSpec] = []
        self._fired: set = set()
        self._counts: Dict[str, int] = {}
        self._env_loaded = False
        self._neutralized = False

    # ------------------------------------------------------------- arming
    def enable(self, point: str, kind: str = "crash", rank: Optional[int] = None) -> FailpointSpec:
        """Arm ``point`` (``"site:hit"`` or ``"site:hit@rank"``) in this
        process and export it through :data:`ENV_VAR` for spawned workers.
        An explicit ``rank=`` overrides a rank suffix in ``point``."""
        spec = FailpointSpec.parse(f"{point}=crash")  # validate site:hit[@rank]
        spec = FailpointSpec(
            site=spec.site,
            hit=spec.hit,
            kind=kind if kind in KINDS else _bad_kind(kind),
            rank=rank if rank is not None else spec.rank,
        )
        self._load_env()
        self._specs.append(spec)
        self._export()
        return spec

    def disable(self, point: str, rank: Optional[int] = None) -> None:
        """Disarm every spec matching ``point`` (site:hit[@rank])."""
        probe = FailpointSpec.parse(f"{point}=crash")
        target_rank = rank if rank is not None else probe.rank
        self._load_env()
        self._specs = [
            s
            for s in self._specs
            if not (s.site == probe.site and s.hit == probe.hit and s.rank == target_rank)
        ]
        self._export()

    def clear(self) -> None:
        """Disarm everything and scrub the environment variable."""
        self._specs = []
        self._fired = set()
        self._counts = {}
        self._env_loaded = True
        self._neutralized = False
        os.environ.pop(ENV_VAR, None)

    def neutralize(self) -> None:
        """Ignore every armed/inherited failpoint in *this* process only.

        The launcher calls this (via the worker's ``clear_failpoints``
        spawn flag) in ranks it respawns after a failure: the environment
        still carries the spec, but a restarted rank must not re-trip the
        failure that killed its predecessor."""
        self._neutralized = True

    def active(self) -> List[FailpointSpec]:
        """The armed specs (env-inherited ones included)."""
        self._load_env()
        return list(self._specs)

    def scoped(self, specs: Dict[str, Tuple[str, Optional[int]]]):
        """Context manager arming ``{point: (kind, rank)}`` and clearing on
        exit — chaos tests use this so a failed assertion can never leak an
        armed crash into the next test."""
        return _Scoped(self, specs)

    # ------------------------------------------------------------- firing
    def fire(
        self,
        site: str,
        *,
        rank: Optional[int] = None,
        step: Optional[int] = None,
        pipe_drop: Optional[Callable[[], None]] = None,
        crash: Optional[Callable[[], None]] = None,
    ) -> None:
        """Evaluate ``site``; act out the first matching armed spec.

        ``step`` makes matching deterministic across restarts (the worker
        passes its global iteration); without it the per-process hit
        counter is used.  ``pipe_drop`` is the site's hook for the
        ``pipe_drop`` kind (close your comm channels here); ``crash``
        overrides the default self-SIGKILL with a site-specific blast
        radius (the fabric's whole-machine kill).
        """
        self._load_env()
        if self._neutralized or not self._specs:
            return
        if step is None:
            self._counts[site] = self._counts.get(site, 0) + 1
            step = self._counts[site]
        for spec in self._specs:
            if spec.site != site or spec.hit != step:
                continue
            if spec.rank is not None and rank is not None and spec.rank != rank:
                continue
            key = (spec.encode(), rank)
            if key in self._fired:
                continue
            self._fired.add(key)
            self._act(spec, pipe_drop, crash)
            return

    def _act(
        self,
        spec: FailpointSpec,
        pipe_drop: Optional[Callable[[], None]],
        crash: Optional[Callable[[], None]] = None,
    ) -> None:
        if spec.kind == "crash":
            # a true SIGKILL: no atexit, no error frame, no flushed pipes —
            # exactly the failure mode elastic restart must absorb
            if crash is not None:
                crash()
            os.kill(os.getpid(), signal.SIGKILL)
        elif spec.kind == "wedge":
            while True:  # pragma: no cover - the supervisor kills us
                time.sleep(0.5)
        elif spec.kind == "pipe_drop":
            if pipe_drop is not None:
                pipe_drop()
                return  # execution continues; the next collective op fails
            raise FailpointError(
                f"pipe_drop failpoint {spec.encode()} fired at a site with no "
                f"pipe_drop hook"
            )
        elif spec.kind == "exc":
            raise FailpointError(f"failpoint {spec.encode()} fired")

    # ------------------------------------------------------------ plumbing
    def _export(self) -> None:
        if self._specs:
            os.environ[ENV_VAR] = ";".join(s.encode() for s in self._specs)
        else:
            os.environ.pop(ENV_VAR, None)

    def _load_env(self) -> None:
        """Merge env-var specs once per process (spawned workers' path)."""
        if self._env_loaded:
            return
        self._env_loaded = True
        raw = os.environ.get(ENV_VAR, "")
        for part in raw.split(";"):
            if part.strip():
                spec = FailpointSpec.parse(part)
                if spec not in self._specs:
                    self._specs.append(spec)


class _Scoped:
    def __init__(self, registry: FailpointRegistry, specs) -> None:
        self.registry = registry
        self.specs = specs

    def __enter__(self) -> FailpointRegistry:
        for point, (kind, rank) in self.specs.items():
            self.registry.enable(point, kind=kind, rank=rank)
        return self.registry

    def __exit__(self, *exc) -> None:
        self.registry.clear()


def _bad_kind(kind: str) -> str:
    raise ValueError(f"unknown failpoint kind {kind!r}; choose from {KINDS}")


#: the process-wide registry every instrumented site consults
_REGISTRY = FailpointRegistry()

enable = _REGISTRY.enable
disable = _REGISTRY.disable
clear = _REGISTRY.clear
neutralize = _REGISTRY.neutralize
active = _REGISTRY.active
scoped = _REGISTRY.scoped
fire = _REGISTRY.fire
