"""Hot-path throughput benchmarks (train step / eval sweep / serve batch).

This module is the measurement harness behind ``python -m repro.cli
perf-bench`` and ``benchmarks/test_hotpath_throughput.py``.  Each section
times the same workload twice:

* **fused** — the current execution layer: fused nn kernels
  (:mod:`repro.nn.fused`), ``backward(free_graph=True)``, the vectorized
  sampler and the :class:`~repro.graph.prep.BatchPrep` neighborhood cache /
  prefetch pipeline;
* **legacy** — the pre-refactor configuration: composite per-op autograd,
  the per-root Python sampling loop, no neighborhood cache, no prefetch.

Reported numbers are events/sec (train, eval) or pairs/sec (serve), plus
the fused-over-legacy speedup.  ``write_report`` emits ``BENCH_hotpath.json``
so the repo's performance trajectory has comparable data points over time.
"""

from __future__ import annotations

import json
import math
import platform
import time
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from .data import Dataset, InteractionModel, PaperStats, generate_interaction_graph
from .graph.prep import BatchPrep
from .infer import InferenceEngine
from .models.tgn import TGN
from .nn import clip_grad_norm, use_fused
from .parallel.config import ParallelConfig
from .serve import MicroBatcher
from .train import DistTGLTrainer, TrainerSpec
from .train.evaluation import evaluate_link_prediction


def _make_dataset(num_events: int, edge_dim: int, seed: int) -> Dataset:
    model = InteractionModel(
        num_src=60,
        num_dst=50,
        num_events=num_events,
        edge_dim=edge_dim,
        p_repeat=0.6,
        num_communities=4,
        seed=seed,
    )
    graph = generate_interaction_graph(model, name="hotpath")
    paper = PaperStats(
        model.num_nodes, num_events, 100.0, 100, edge_dim, True, True, "link"
    )
    return Dataset("hotpath", graph, paper, "link")


def _make_trainer(
    ds: Dataset, modern: bool, seed: int, compiled: bool = False
) -> DistTGLTrainer:
    spec = TrainerSpec(
        batch_size=100,
        memory_dim=24,
        time_dim=12,
        embed_dim=24,
        num_negative_groups=4,
        eval_candidates=10,
        seed=seed,
        fused=modern,
        prep_cache_batches=512 if modern else 0,
        compile=compiled,
    )
    trainer = DistTGLTrainer(ds, ParallelConfig(), spec)
    trainer.sampler.vectorized = modern
    return trainer


def _train_steps(trainer: DistTGLTrainer, steps: int) -> int:
    """Run the canonical 1×1×1 training step ``steps`` times; return events."""
    group = trainer.groups[0]
    nb = trainer.num_batches
    events = 0
    modern = trainer.spec.fused
    compiled = trainer._compiler is not None
    with use_fused(modern):
        for s in range(steps):
            b_idx = s % nb
            group.maybe_reset(b_idx)
            batch, prep_pos = trainer._prepare_positive(group, b_idx)
            preps_neg = (
                trainer._prepare_negatives(
                    group, batch, [s % trainer.neg_store.num_groups]
                )
                if trainer.neg_store is not None
                else {}
            )
            value = None
            if compiled:
                entry = {
                    "batch": batch,
                    "global_size": batch.size,
                    "pos": prep_pos,
                    "neg": preps_neg,
                    "h0": None,
                }
                # merged step tape: canonical forward + sub-step-0 term in
                # one replay, write-back rebuilt from the captures
                wb = trainer._forward_entry_compiled(entry, 0)
                if wb is None:
                    h_pos, state = trainer._forward_prepared_compiled(prep_pos)
                    entry["h0"] = h_pos
                    wb = trainer.model.make_writeback(
                        batch.src, batch.dst, batch.times, state, state,
                        edge_feats=batch.edge_feats,
                    )
                TGN.apply_writeback(wb, group.memory, group.mailbox)
                g_idx = min(preps_neg) if preps_neg else None
                value = trainer._consume_step_entry(entry, g_idx)
                if value is None:
                    value = trainer._compiled_term(entry, g_idx)
                h_pos = entry["h0"]
            else:
                h_pos, state = trainer.model.forward_prepared(prep_pos)
                wb = trainer.model.make_writeback(
                    batch.src, batch.dst, batch.times, state, state,
                    edge_feats=batch.edge_feats,
                )
                TGN.apply_writeback(wb, group.memory, group.mailbox)
            if value is None:
                # the refactored trainer reuses the canonical forward for the
                # sub-step-0 loss; the legacy path paid a third forward per step
                h0 = h_pos if modern else None
                if trainer.dataset.task == "link":
                    g_idx = next(iter(preps_neg))
                    loss = trainer._loss_link(
                        batch, prep_pos, preps_neg[g_idx], h_pos=h0
                    )
                else:
                    loss = trainer._loss_edge_class(batch, prep_pos, h=h0)
                trainer.optimizer.zero_grad()
                loss.backward(free_graph=modern)
            clip_grad_norm(trainer.optimizer.params, trainer.spec.grad_clip)
            trainer.optimizer.step()
            events += batch.size
    return events


def profile_train_phases(ds: Dataset, steps: int, seed: int = 0) -> Dict[str, float]:
    """Per-phase seconds of the fused training loop, from span telemetry.

    Runs a separate pass of the canonical ``DistTGLTrainer.train`` loop
    under a memory-only tracer with a private metrics registry and reads
    the ``phase/<name>`` counters back.  Kept separate from the timed
    fused/legacy measurement passes, which stay telemetry-free so the
    reported throughputs are untraced numbers.
    """
    from .obs.metrics import MetricsRegistry, phase_totals
    from .obs.trace import configure, disable

    trainer = _make_trainer(ds, True, seed)
    registry = MetricsRegistry()
    configure(None, rank=0, lane="perf", registry=registry)
    try:
        trainer.train(max_iterations=steps, eval_every_sweeps=10**9)
    finally:
        disable(flush=False)
    return {k: round(v, 4) for k, v in sorted(phase_totals(registry).items())}


def bench_train_step(
    ds: Dataset, modern: bool, steps: int, seed: int = 0, compiled: bool = False
) -> float:
    trainer = _make_trainer(ds, modern, seed, compiled=compiled)
    # warm caches + allocator; the compiled lane warms one full
    # (batch, negative-group) cycle so every shape key is traced before the
    # timed run (replays only)
    if compiled:
        groups = trainer.neg_store.num_groups if trainer.neg_store else 1
        warm = math.lcm(trainer.num_batches, groups)
    else:
        warm = min(5, steps)
    _train_steps(trainer, warm)
    t0 = time.perf_counter()
    events = _train_steps(trainer, steps)
    elapsed = time.perf_counter() - t0
    return events / elapsed


def bench_eval_sweep(ds: Dataset, modern: bool, sweeps: int = 2, seed: int = 0) -> float:
    trainer = _make_trainer(ds, modern, seed)
    split = trainer.split
    group = trainer.groups[0]
    prep = (
        trainer.prep
        if modern
        else BatchPrep(trainer.sampler, edge_dim=ds.graph.edge_dim, cache_size=0)
    )
    events = 0
    t0 = time.perf_counter()
    with use_fused(modern):
        for _ in range(sweeps):
            result = evaluate_link_prediction(
                trainer.model, trainer.decoder, trainer.graph, trainer.sampler,
                group.memory.clone(), group.mailbox.clone(),
                split.val.start, split.val.stop,
                trainer.eval_negs, batch_size=trainer.global_batch,
                prep=prep, prefetch=modern,
            )
            events += result.num_events
    elapsed = time.perf_counter() - t0
    return events / elapsed


def bench_serve_batch(
    ds: Dataset,
    modern: bool,
    requests: int = 40,
    candidates: int = 20,
    seed: int = 0,
) -> float:
    trainer = _make_trainer(ds, modern, seed)
    split = trainer.split
    serve_graph = ds.graph.slice_events(split.train)
    engine = InferenceEngine(
        trainer.model,
        serve_graph,
        decoder=trainer.decoder,
        prep_cache=64 if modern else 0,
    )
    engine.sampler.vectorized = modern
    batcher = MicroBatcher(engine, max_batch_pairs=candidates * 8, max_delay=0.0)
    rng = np.random.default_rng(seed)
    # spread query times over the recent half of the stream: per-request
    # timestamps differ, so flushes do real sampling work instead of
    # collapsing to a handful of deduplicated queries
    t_end = float(ds.graph.timestamps[split.train.stop - 1])
    pairs = 0
    t0 = time.perf_counter()
    with use_fused(modern):
        for _ in range(requests):
            cands = rng.integers(0, serve_graph.num_nodes, size=candidates)
            at_time = float(rng.uniform(0.5 * t_end, t_end))
            batcher.submit_rank(int(rng.integers(0, serve_graph.num_nodes)), cands, at_time)
            pairs += candidates
        batcher.flush()
    elapsed = time.perf_counter() - t0
    return pairs / elapsed


def run_hotpath_bench(
    num_events: int = 2400,
    edge_dim: int = 8,
    train_steps: int = 50,
    eval_sweeps: int = 2,
    serve_requests: int = 40,
    seed: int = 0,
    repeats: int = 3,
) -> Dict:
    """Measure all three hot paths fused vs. legacy; return the report dict.

    Each configuration is measured ``repeats`` times, fused/legacy runs
    *interleaved* so CPU frequency phases and scheduler noise hit both sides
    alike, and the best run per side is kept — best-of-N is what the speedup
    ratio must be robust against on shared machines.
    """
    ds = _make_dataset(num_events, edge_dim, seed)

    def section(fn, *args) -> Dict[str, float]:
        fused, legacy = 0.0, 0.0
        for _ in range(repeats):
            fused = max(fused, fn(ds, True, *args))
            legacy = max(legacy, fn(ds, False, *args))
        return {
            "fused_events_per_sec": round(fused, 2),
            "legacy_events_per_sec": round(legacy, 2),
            "speedup": round(fused / legacy, 3),
        }

    # train section: fused / legacy / compiled (traced tape replay on top of
    # the fused layer), all interleaved per repeat
    fused = legacy = compiled = 0.0
    for _ in range(repeats):
        fused = max(fused, bench_train_step(ds, True, train_steps, seed))
        legacy = max(legacy, bench_train_step(ds, False, train_steps, seed))
        compiled = max(
            compiled, bench_train_step(ds, True, train_steps, seed, compiled=True)
        )
    train_section = {
        "fused_events_per_sec": round(fused, 2),
        "legacy_events_per_sec": round(legacy, 2),
        "speedup": round(fused / legacy, 3),
        "compiled_events_per_sec": round(compiled, 2),
        "speedup_compiled_vs_fused": round(compiled / fused, 3),
    }
    # the phase column comes from span telemetry — a separate profiled pass
    # through the canonical training loop, so the timed runs stay untraced
    train_section["phases_s"] = profile_train_phases(ds, train_steps, seed)

    return {
        "benchmark": "hotpath_throughput",
        "config": {
            "num_events": num_events,
            "edge_dim": edge_dim,
            "train_steps": train_steps,
            "eval_sweeps": eval_sweeps,
            "serve_requests": serve_requests,
            "seed": seed,
            "platform": platform.platform(),
        },
        "train_step": train_section,
        "eval_sweep": section(bench_eval_sweep, eval_sweeps, seed),
        "serve_batch": section(bench_serve_batch, serve_requests, 20, seed),
    }


def write_report(report: Dict, path: Optional[str] = None) -> Path:
    """Write the hot-path report to ``BENCH_hotpath.json`` (repo root default)."""
    if path is None:
        out = Path(__file__).resolve().parents[2] / "BENCH_hotpath.json"
    else:
        out = Path(path)
    out.write_text(json.dumps(report, indent=2) + "\n")
    return out
