"""repro.graph — temporal graph storage, sampling, batching, negatives."""

from .batching import (
    BatchLoader,
    MiniBatch,
    epoch_parallel_schedule,
    memory_parallel_schedule,
    segment_bounds,
)
from .negative import NegativeGroupStore, NegativeSampler, eval_negatives
from .prep import BatchPrep, Neighborhood, PrefetchingLoader, PreparedBatch, PrepStats
from .sampler import NeighborBlock, RecentNeighborSampler
from .temporal_graph import GraphSplit, TemporalGraph

__all__ = [
    "TemporalGraph",
    "GraphSplit",
    "RecentNeighborSampler",
    "NeighborBlock",
    "BatchPrep",
    "Neighborhood",
    "PreparedBatch",
    "PrefetchingLoader",
    "PrepStats",
    "BatchLoader",
    "MiniBatch",
    "segment_bounds",
    "memory_parallel_schedule",
    "epoch_parallel_schedule",
    "NegativeSampler",
    "NegativeGroupStore",
    "eval_negatives",
]
