"""Unified batch-preparation pipeline: sample → slice → assemble, once.

Before this module existed, four call sites (the trainer's positive/negative
prepare helpers, the evaluation sweeps, the inference engine and the serving
micro-batcher) each re-implemented the same sequence: sample temporal
neighborhoods, deduplicate the memory fetch set, slice edge features, read
memory/mailbox state and pack a :class:`PreparedBatch`.  ``BatchPrep`` is
that sequence as a single vectorized pipeline; every layer now consumes it.

Pipeline stages and their caching/overlap contracts
---------------------------------------------------
1. **Neighborhood** (:meth:`BatchPrep.neighborhood`) — sampling, fetch-set
   deduplication and edge-feature slicing.  This stage depends only on the
   *graph topology*, never on memory state, so its result is cached in an
   LRU keyed by ``(nodes, times, graph version)``: repeated queries (epoch
   sweeps revisiting the same batches, memory-parallel groups sharing a
   schedule, hot serving candidate sets) skip the sampler entirely.  A graph
   append bumps the version and naturally invalidates stale entries.
2. **Assembly** (:meth:`BatchPrep.assemble`) — the memory/mailbox read
   through a ``MemoryView``.  This stage is *state-dependent* and is never
   cached or prefetched: it always runs at consume time against the current
   state.
3. **Overlap** (:class:`PrefetchingLoader`) — the paper's §3.3 pipeline
   overlap made real: a background thread runs stage 1 for batch ``t+1``
   while the caller computes on batch ``t``; stage 2 runs on the consumer
   thread at yield time, after the caller has committed batch ``t``'s
   write-back, so prefetching can never serve stale memory.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from queue import Empty, Full, Queue
from typing import Callable, Iterable, Iterator, Optional, Tuple

import numpy as np

from ..obs import span as obs_span
from .sampler import NeighborBlock, RecentNeighborSampler


@dataclass
class PreparedBatch:
    """Frozen raw inputs of one forward pass (sampled topology + memory reads)."""

    block: NeighborBlock
    uniq: np.ndarray
    root_pos: np.ndarray
    nbr_pos: np.ndarray
    memory: np.ndarray
    last_update: np.ndarray
    mail: np.ndarray
    mail_time: np.ndarray
    has_mail: np.ndarray
    edge_feats: Optional[np.ndarray]

    # State-derived arrays the memory updaters need, hoisted here so the
    # batch exposes one stable allocation per pass (sub-steps and tape
    # replays reuse it).  Formulas mirror the updater's own computation
    # bit-for-bit; both are pure functions of the frozen reads above.
    def mail_dt32(self) -> np.ndarray:
        """float32 ``max(mail_time − last_update, 0)`` (time-encoder input)."""
        arr = self.__dict__.get("_mail_dt32")
        if arr is None:
            arr = np.maximum(
                np.asarray(self.mail_time, dtype=np.float64)
                - np.asarray(self.last_update, np.float64),
                0.0,
            ).astype(np.float32)
            self.__dict__["_mail_dt32"] = arr
        return arr

    def new_last_update(self) -> np.ndarray:
        """Post-update ``last_update`` column (mail time where mail exists)."""
        arr = self.__dict__.get("_new_last")
        if arr is None:
            arr = np.where(
                np.asarray(self.has_mail, dtype=bool), self.mail_time, self.last_update
            )
            self.__dict__["_new_last"] = arr
        return arr


@dataclass
class Neighborhood:
    """The state-independent half of a PreparedBatch (cacheable)."""

    block: NeighborBlock
    uniq: np.ndarray
    root_pos: np.ndarray
    nbr_pos: np.ndarray
    edge_feats: Optional[np.ndarray]

    @property
    def nbytes(self) -> int:
        """Approximate retained array bytes (drives byte-bounded eviction)."""
        b = self.block
        total = (
            b.roots.nbytes + b.root_times.nbytes + b.neighbors.nbytes
            + b.edge_ids.nbytes + b.times.nbytes + b.mask.nbytes
            + self.uniq.nbytes + self.root_pos.nbytes + self.nbr_pos.nbytes
        )
        if self.edge_feats is not None:
            total += self.edge_feats.nbytes
        return total


@dataclass
class PrepStats:
    """Counters for the neighborhood cache (benches and tests read these)."""

    prepared: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class BatchPrep:
    """One vectorized sample → slice → assemble path for every workload.

    Parameters
    ----------
    sampler:
        The temporal neighbor sampler (its graph defines the topology).
    edge_dim:
        Edge-feature width the model expects; 0 disables feature slicing.
    edge_feat_table:
        ``[num_events, edge_dim]`` feature table.  When ``None`` (the usual
        case) the table is read from ``sampler.graph.edge_feats`` at every
        preparation, so streaming appends — which *rebind* the graph's
        feature array — are picked up automatically.
    cache_size:
        Maximum LRU entries for the neighborhood cache; 0 disables caching.
    cache_bytes:
        Byte budget for cached neighborhood arrays (default 256 MiB).  Entry
        counts alone do not bound memory — an evaluation batch covering
        hundreds of negative candidates per event caches orders of magnitude
        more array data than a training batch — so eviction honours both
        limits.
    """

    DEFAULT_CACHE_BYTES = 256 * 1024 * 1024

    def __init__(
        self,
        sampler: RecentNeighborSampler,
        edge_dim: int = 0,
        edge_feat_table: Optional[np.ndarray] = None,
        cache_size: int = 0,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> None:
        if edge_dim and edge_feat_table is None and sampler.graph.edge_feats is None:
            raise ValueError("edge_dim > 0 requires edge features")
        self.sampler = sampler
        self.edge_dim = edge_dim
        self._edge_feat_table = edge_feat_table
        self.cache_size = int(cache_size)
        self.cache_bytes = int(cache_bytes)
        self.stats = PrepStats()
        self._cache: "OrderedDict[Tuple[bytes, bytes, int], Neighborhood]" = OrderedDict()
        self._cached_bytes = 0
        self._lock = threading.Lock()

    @property
    def edge_feat_table(self) -> Optional[np.ndarray]:
        if self._edge_feat_table is not None:
            return self._edge_feat_table
        return self.sampler.graph.edge_feats

    # ----------------------------------------------------------- stage 1
    def neighborhood(self, nodes: np.ndarray, times: np.ndarray) -> Neighborhood:
        """Sample + dedup + feature-slice for a (node, time) query batch.

        Pure function of the graph topology — safe to cache and to run on a
        prefetch thread.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        key = None
        if self.cache_size > 0:
            key = (nodes.tobytes(), times.tobytes(), self.sampler.graph.version)
            with self._lock:
                hit = self._cache.get(key)
                if hit is not None:
                    self._cache.move_to_end(key)
                    self.stats.cache_hits += 1
                    return hit
            self.stats.cache_misses += 1

        with obs_span("sample", queries=int(len(nodes))):
            block = self.sampler.sample(nodes, times)
        uniq, inverse = np.unique(
            np.concatenate([block.roots, block.neighbors.reshape(-1)]),
            return_inverse=True,
        )
        b, k = block.mask.shape
        root_pos = inverse[:b]
        nbr_pos = inverse[b:].reshape(b, k)

        edge_feats = None
        if self.edge_dim:
            eids = block.edge_ids.copy()
            pad = eids < 0
            eids[pad] = 0
            edge_feats = self.edge_feat_table[eids].astype(np.float32)
            edge_feats[pad] = 0.0

        neigh = Neighborhood(
            block=block,
            uniq=uniq,
            root_pos=root_pos,
            nbr_pos=nbr_pos,
            edge_feats=edge_feats,
        )
        if key is not None:
            size = neigh.nbytes
            if size <= self.cache_bytes:
                with self._lock:
                    self._cache[key] = neigh
                    self._cached_bytes += size
                    while len(self._cache) > self.cache_size or (
                        self._cached_bytes > self.cache_bytes and len(self._cache) > 1
                    ):
                        _, evicted = self._cache.popitem(last=False)
                        self._cached_bytes -= evicted.nbytes
        return neigh

    # ----------------------------------------------------------- stage 2
    def assemble(self, neigh: Neighborhood, view) -> PreparedBatch:
        """Attach the current memory/mailbox state to a neighborhood.

        ``view`` is any :class:`~repro.models.tgn.MemoryView`.  Never cached:
        memory moves after every write-back.
        """
        mem, last_upd, mail, mail_t, has_mail = view.read(neigh.uniq)
        self.stats.prepared += 1
        return PreparedBatch(
            block=neigh.block,
            uniq=neigh.uniq,
            root_pos=neigh.root_pos,
            nbr_pos=neigh.nbr_pos,
            memory=mem,
            last_update=last_upd,
            mail=mail,
            mail_time=mail_t,
            has_mail=has_mail,
            edge_feats=neigh.edge_feats,
        )

    # ------------------------------------------------------------- facade
    def prepare(self, nodes: np.ndarray, times: np.ndarray, view) -> PreparedBatch:
        """Full pipeline: neighborhood (cached) + state assembly (fresh)."""
        return self.assemble(self.neighborhood(nodes, times), view)

    def prepare_events(self, batch, view) -> PreparedBatch:
        """Prepare the positive roots of a chronological event batch.

        ``batch`` is a :class:`~repro.graph.batching.MiniBatch`; the query
        set is ``src ++ dst`` at the event timestamps, matching the layout
        every downstream loss/decoder expects (first half sources, second
        half destinations).
        """
        nodes = np.concatenate([batch.src, batch.dst])
        times = np.concatenate([batch.times, batch.times])
        return self.prepare(nodes, times, view)

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()
            self._cached_bytes = 0


class PrefetchingLoader:
    """Overlap neighborhood preparation of upcoming batches with compute.

    Wraps an iterable of items (typically :class:`MiniBatch`) and yields
    ``(item, PreparedBatch)`` pairs.  A small pool of ``workers`` threads
    runs the state-independent :meth:`BatchPrep.neighborhood` stage ahead
    of the consumer; the state-*dependent* :meth:`BatchPrep.assemble` read
    runs on the consumer thread when the pair is yielded — i.e. strictly
    after the consumer finished (and committed write-backs for) the
    previous item.  That split is what makes prefetching safe in a model
    whose memory mutates every batch: topology is fetched early, state is
    fetched late, and growing the pool never changes that contract —
    workers may *sample* out of order, but batches are re-sequenced and
    yielded (and therefore assembled) strictly in input order.

    Parameters
    ----------
    items:
        Iterable of work items.
    prep:
        The shared :class:`BatchPrep` pipeline.
    view:
        Memory view read at yield time.
    queries:
        ``item -> (nodes, times)``; defaults to the positive-event layout
        ``(src ++ dst, times ++ times)``.
    depth:
        Prefetch queue depth (batches prepared ahead of the consumer).
    workers:
        Sampling threads.  One thread already hides most of the sampling
        latency behind compute (§3.3); more help when a single
        neighborhood preparation is slower than a training step — wide
        evaluation batches with hundreds of negative candidates per event,
        or samplers over very large graphs.
    """

    def __init__(
        self,
        items: Iterable,
        prep: BatchPrep,
        view,
        queries: Optional[Callable[[object], Tuple[np.ndarray, np.ndarray]]] = None,
        depth: int = 2,
        workers: int = 1,
    ) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.items = items
        self.prep = prep
        self.view = view
        self.queries = queries or (
            lambda batch: (
                np.concatenate([batch.src, batch.dst]),
                np.concatenate([batch.times, batch.times]),
            )
        )
        self.depth = depth
        self.workers = workers

    def __iter__(self) -> Iterator[Tuple[object, PreparedBatch]]:
        queue: Queue = Queue(maxsize=self.depth)
        stop = threading.Event()
        source_lock = threading.Lock()
        source = iter(self.items)
        next_seq = [0]
        # bounds total in-flight batches (queue + consumer's reorder buffer):
        # out-of-order completions park in the reorder buffer, so the queue
        # bound alone would let fast workers race arbitrarily far ahead of
        # one slow neighborhood and buffer the whole epoch in memory
        budget = threading.Semaphore(self.depth + self.workers)
        _DONE = object()

        def _acquire_budget() -> bool:
            while not stop.is_set():
                if budget.acquire(timeout=0.05):
                    return True
            return False

        def _put(payload) -> bool:
            # bounded put that aborts when the consumer went away
            while not stop.is_set():
                try:
                    queue.put(payload, timeout=0.05)
                    return True
                except Full:
                    continue
            return False

        def _worker() -> None:
            while not stop.is_set():
                if not _acquire_budget():
                    return
                with source_lock:
                    seq = next_seq[0]
                    try:
                        item = next(source)
                    except StopIteration:
                        break
                    except BaseException as exc:  # the source itself failed
                        next_seq[0] += 1
                        _put((seq, None, None, exc))
                        return
                    next_seq[0] += 1
                try:
                    neigh = self.prep.neighborhood(*self.queries(item))
                except BaseException as exc:  # propagate at this position
                    _put((seq, item, None, exc))
                    return
                if not _put((seq, item, neigh, None)):
                    return
            _put(_DONE)

        pool = [
            threading.Thread(
                target=_worker, name=f"batchprep-prefetch-{w}", daemon=True
            )
            for w in range(self.workers)
        ]
        for thread in pool:
            thread.start()
        try:
            reorder: dict = {}
            expected = 0
            live = len(pool)
            while live or reorder:
                if expected not in reorder:
                    payload = queue.get()
                    if payload is _DONE:
                        live -= 1
                        continue
                    seq, item, neigh, exc = payload
                    reorder[seq] = (item, neigh, exc)
                    continue
                item, neigh, exc = reorder.pop(expected)
                expected += 1
                budget.release()
                if exc is not None:
                    raise exc
                # assemble at yield time, after the consumer committed the
                # previous batch's write-back — never earlier
                yield item, self.prep.assemble(neigh, self.view)
        finally:
            stop.set()
            # drain so blocked workers can observe the stop flag promptly
            try:
                while True:
                    queue.get_nowait()
            except Empty:
                pass
            for thread in pool:
                thread.join(timeout=5.0)
