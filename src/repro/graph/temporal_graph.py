"""Continuous-time dynamic graph (CTDG) storage.

The paper (§2.1) represents a dynamic graph as a time-ordered series of
quadruples ``(u, v, e_uv, t)``.  :class:`TemporalGraph` stores those event
arrays plus a *temporal CSR* index — per-node adjacency sorted by timestamp —
which is what the most-recent-k neighbor sampler binary-searches.

Conventions
-----------
* events are sorted by ``t`` ascending (ties keep input order, which defines
  the processing order within a batch);
* every edge is stored in both directions in the CSR (an interaction updates
  the memory of both endpoints, Eq. 1–2);
* ``max_time`` equals ``max(t)`` with ``min(t) == 0`` after normalisation,
  matching the Table 2 convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass
class GraphSplit:
    """Chronological train/val/test boundaries expressed as event indices."""

    train_end: int
    val_end: int
    num_events: int

    @property
    def train(self) -> slice:
        return slice(0, self.train_end)

    @property
    def val(self) -> slice:
        return slice(self.train_end, self.val_end)

    @property
    def test(self) -> slice:
        return slice(self.val_end, self.num_events)


class TemporalGraph:
    """CTDG: event arrays + temporal CSR adjacency, with streaming appends.

    The training pipeline treats the graph as frozen; online serving appends
    new events through :meth:`append_events`, which keeps existing event ids
    stable (appended events get ids ``E..E+n``) and lazily invalidates the
    CSR so samplers pick up fresh neighborhoods.

    Parameters
    ----------
    src, dst, timestamps:
        Event arrays; will be stably sorted by timestamp.
    edge_feats:
        Optional ``[E, d_e]`` float array of edge features.
    num_nodes:
        Total node count; inferred from the arrays when omitted.
    src_partition_size:
        For bipartite graphs (Wikipedia/Reddit/MOOC): nodes
        ``[0, src_partition_size)`` are sources (users) and the rest are
        destinations (pages/subreddits/items).  ``None`` marks a general
        graph (Flights/GDELT).
    node_feats:
        Optional ``[V, d_v]`` static node features.
    """

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        timestamps: np.ndarray,
        edge_feats: Optional[np.ndarray] = None,
        num_nodes: Optional[int] = None,
        src_partition_size: Optional[int] = None,
        node_feats: Optional[np.ndarray] = None,
        name: str = "temporal-graph",
    ) -> None:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if not (len(src) == len(dst) == len(timestamps)):
            raise ValueError("src, dst, timestamps must have equal length")
        if len(src) == 0:
            raise ValueError("a temporal graph needs at least one event")

        if edge_feats is not None and len(edge_feats) != len(src):
            raise ValueError("edge_feats length must match number of events")

        order = np.argsort(timestamps, kind="stable")
        self.src = src[order]
        self.dst = dst[order]
        # Normalise so min(t) == 0, matching the paper's Table 2 convention.
        ts = timestamps[order]
        self.timestamps = ts - ts[0]
        self.edge_feats = (
            np.asarray(edge_feats, dtype=np.float32)[order]
            if edge_feats is not None
            else None
        )
        if self.edge_feats is not None and len(self.edge_feats) != len(self.src):
            raise ValueError("edge_feats length must match number of events")

        inferred = int(max(self.src.max(), self.dst.max())) + 1
        self.num_nodes = int(num_nodes) if num_nodes is not None else inferred
        if self.num_nodes < inferred:
            raise ValueError(
                f"num_nodes={self.num_nodes} smaller than max node id {inferred - 1}"
            )
        self.src_partition_size = src_partition_size
        self.node_feats = (
            np.asarray(node_feats, dtype=np.float32) if node_feats is not None else None
        )
        self.name = name
        self._csr: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None
        self._version = 0
        self._sorted = True
        self._max_time = float(self.timestamps[-1])

    # ------------------------------------------------------------------ meta
    @property
    def num_events(self) -> int:
        return len(self.src)

    @property
    def version(self) -> int:
        """Bumped on every :meth:`append_events`; samplers watch it."""
        return self._version

    @property
    def max_time(self) -> float:
        return self._max_time

    @property
    def edge_dim(self) -> int:
        return 0 if self.edge_feats is None else self.edge_feats.shape[1]

    @property
    def node_dim(self) -> int:
        return 0 if self.node_feats is None else self.node_feats.shape[1]

    @property
    def is_bipartite(self) -> bool:
        return self.src_partition_size is not None

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TemporalGraph(name={self.name!r}, V={self.num_nodes}, "
            f"E={self.num_events}, max_t={self.max_time:.3g})"
        )

    # ------------------------------------------------------------------ CSR
    def csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return (indptr, neighbors, edge_ids, times) sorted by time per node.

        Both directions of every event are present, so ``indptr`` has
        ``num_nodes + 1`` entries and the payload arrays ``2 * num_events``.
        """
        if self._csr is None:
            e = self.num_events
            # Self-loop events would otherwise appear twice under one node;
            # keep only the src-side copy for them.
            loop = self.dst == self.src
            endpoints = np.concatenate([self.src, self.dst[~loop]])
            others = np.concatenate([self.dst, self.src[~loop]])
            eids = np.concatenate([np.arange(e), np.arange(e)[~loop]])
            times = np.concatenate([self.timestamps, self.timestamps[~loop]])
            # Sort by (endpoint, time), stable on insertion order for ties.
            # A plain stable sort on endpoints is NOT enough: the src-side
            # entries of a node precede all its dst-side entries in the
            # concatenated array, which would interleave times out of order
            # on non-bipartite graphs.
            # Tie-break equal timestamps by event id so "most recent" is
            # well-defined and matches the chronological processing order.
            order = np.lexsort((eids, times, endpoints))
            endpoints = endpoints[order]
            counts = np.bincount(endpoints, minlength=self.num_nodes)
            indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._csr = (indptr, others[order], eids[order], times[order])
        return self._csr

    def degrees(self) -> np.ndarray:
        """Total event count per node (both endpoints counted)."""
        indptr, _, _, _ = self.csr()
        return np.diff(indptr)

    # ------------------------------------------------------------- streaming
    def check_events(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        timestamps: np.ndarray,
        edge_feats: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Validate a candidate event batch without mutating the graph.

        Returns the coerced arrays.  Ingestion paths call this *before*
        touching any other state (WAL, replica memories) so a bad batch
        fails atomically instead of desynchronizing the serving system.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        ts = np.asarray(timestamps, dtype=np.float64)
        if not (len(src) == len(dst) == len(ts)):
            raise ValueError("src, dst, timestamps must have equal length")
        ef = None
        if edge_feats is not None:
            if self.edge_feats is None:
                raise ValueError("graph was built without edge features")
            ef = np.asarray(edge_feats, dtype=np.float32)
            if ef.shape != (len(src), self.edge_dim):
                raise ValueError(
                    f"edge_feats shape {ef.shape} != ({len(src)}, {self.edge_dim})"
                )
        if len(src) == 0:
            return src, dst, ts, ef
        if src.min() < 0 or dst.min() < 0:
            raise ValueError("node ids must be non-negative")
        top = int(max(src.max(), dst.max()))
        if top >= self.num_nodes:
            raise ValueError(
                f"event references node {top} outside the fixed universe "
                f"of {self.num_nodes} nodes"
            )
        return src, dst, ts, ef

    def append_events(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        timestamps: np.ndarray,
        edge_feats: Optional[np.ndarray] = None,
    ) -> slice:
        """Append a batch of new events; returns the slice of new event ids.

        Appended events keep all existing event ids stable (they are placed
        at the end of the arrays with ids ``E..E+n``), so cached edge-feature
        lookups and previously sampled :class:`NeighborBlock` ids stay valid.
        Timestamps must be on the graph's normalized time axis (the one
        ``self.timestamps`` uses) and are *not* re-normalized.

        Out-of-order appends (timestamps before ``max_time``) are allowed —
        the CSR lexsorts by time per node, so sampling stays correct — but
        they void the global chronological ordering, after which
        :meth:`chronological_split` / :meth:`slice_events` refuse to run.

        The node universe is fixed at construction: serving-side memory and
        mailboxes are sized ``num_nodes``, so events referencing unseen node
        ids raise instead of silently growing the graph.
        """
        src, dst, ts, ef = self.check_events(src, dst, timestamps, edge_feats)
        start = self.num_events
        if len(src) == 0:
            return slice(start, start)

        order = np.argsort(ts, kind="stable")
        src, dst, ts = src[order], dst[order], ts[order]
        if self.edge_feats is not None:
            if ef is None:
                ef = np.zeros((len(src), self.edge_dim), dtype=np.float32)
            else:
                ef = ef[order]
            self.edge_feats = np.concatenate([self.edge_feats, ef])

        if ts[0] < self._max_time:
            self._sorted = False
        self._max_time = max(self._max_time, float(ts[-1]))
        self.src = np.concatenate([self.src, src])
        self.dst = np.concatenate([self.dst, dst])
        self.timestamps = np.concatenate([self.timestamps, ts])
        self._csr = None
        self._version += 1
        return slice(start, self.num_events)

    # ---------------------------------------------------------------- splits
    def chronological_split(
        self, train_frac: float = 0.70, val_frac: float = 0.15
    ) -> GraphSplit:
        """Split events chronologically (the standard CTDG protocol)."""
        if not self._sorted:
            raise ValueError(
                "chronological split undefined after out-of-order append_events"
            )
        if not (0 < train_frac < 1 and 0 < val_frac < 1 and train_frac + val_frac < 1):
            raise ValueError("fractions must be in (0, 1) and sum below 1")
        train_end = int(self.num_events * train_frac)
        val_end = int(self.num_events * (train_frac + val_frac))
        train_end = max(1, train_end)
        val_end = max(train_end + 1, val_end)
        if val_end >= self.num_events:
            raise ValueError("graph too small for the requested split")
        return GraphSplit(train_end, val_end, self.num_events)

    def slice_events(self, sl: slice) -> "TemporalGraph":
        """A new graph containing only the events in ``sl`` (same node space)."""
        if not self._sorted:
            raise ValueError("event slices undefined after out-of-order append_events")
        return TemporalGraph(
            self.src[sl],
            self.dst[sl],
            self.timestamps[sl],
            edge_feats=self.edge_feats[sl] if self.edge_feats is not None else None,
            num_nodes=self.num_nodes,
            src_partition_size=self.src_partition_size,
            node_feats=self.node_feats,
            name=f"{self.name}[{sl.start}:{sl.stop}]",
        )

    # ------------------------------------------------------------- statistics
    def unique_edge_fraction(self) -> float:
        """Fraction of events whose (u, v) pair never repeats.

        The paper notes Flights has "the most number of unique edges", which
        drives its poor epoch-parallel scaling (Fig. 9a).
        """
        pairs = self.src * self.num_nodes + self.dst
        _, counts = np.unique(pairs, return_counts=True)
        return float((counts == 1).sum() / self.num_events)

    def stats(self) -> Dict[str, float]:
        """Table-2-style statistics."""
        return {
            "num_nodes": self.num_nodes,
            "num_events": self.num_events,
            "max_time": self.max_time,
            "node_dim": self.node_dim,
            "edge_dim": self.edge_dim,
            "bipartite": self.is_bipartite,
            "unique_edge_fraction": self.unique_edge_fraction(),
            "mean_degree": float(self.degrees().mean()),
        }
