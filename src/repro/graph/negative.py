"""Negative destination sampling for self-supervised temporal link prediction.

The paper evaluates MRR against 49 sampled negative destinations per positive
edge and, during training, reuses a small number of pre-generated negative
*groups* across epochs (§4.0.2: "we prepare 10 groups of negative edges and
randomly use them in the total 100 epochs").  Epoch parallelism (§3.2.2)
requires j *distinct* negative groups for the same positive mini-batch, which
is exactly what :class:`NegativeGroupStore` provides.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .temporal_graph import TemporalGraph


class NegativeSampler:
    """Uniform negative destination sampler, bipartite-aware.

    For bipartite graphs negatives are drawn only from the destination
    partition (paper §4: "for bipartite graphs, we only sample from the
    other graph partition").
    """

    def __init__(self, graph: TemporalGraph, seed: int = 0) -> None:
        self.graph = graph
        self._rng = np.random.default_rng(seed)
        if graph.is_bipartite:
            self._low = graph.src_partition_size
            self._high = graph.num_nodes
        else:
            self._low = 0
            self._high = graph.num_nodes
        if self._high <= self._low:
            raise ValueError("empty destination partition")

    def sample(self, count: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        rng = rng or self._rng
        return rng.integers(self._low, self._high, size=count, dtype=np.int64)

    def sample_matrix(
        self, rows: int, cols: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        rng = rng or self._rng
        return rng.integers(self._low, self._high, size=(rows, cols), dtype=np.int64)


class NegativeGroupStore:
    """Pre-generated negative destination groups, one row per positive event.

    ``group(g)[i]`` is the negative destination paired with positive event
    ``i`` under group ``g``.  Deterministic in (seed, group index) so logical
    trainers across parallelism strategies agree on the negative stream.
    """

    def __init__(
        self,
        graph: TemporalGraph,
        num_groups: int = 10,
        seed: int = 0,
        num_events: Optional[int] = None,
    ) -> None:
        if num_groups <= 0:
            raise ValueError("need at least one negative group")
        self.num_groups = num_groups
        self.num_events = num_events if num_events is not None else graph.num_events
        sampler = NegativeSampler(graph, seed=seed)
        rng = np.random.default_rng(seed)
        self._groups = sampler.sample_matrix(num_groups, self.num_events, rng=rng)

    def group(self, index: int) -> np.ndarray:
        return self._groups[index % self.num_groups]

    def group_for_epoch(self, epoch: int) -> np.ndarray:
        """The paper cycles its 10 groups over 100 epochs."""
        return self.group(epoch % self.num_groups)

    def slice(self, index: int, start: int, stop: int) -> np.ndarray:
        return self._groups[index % self.num_groups, start:stop]


def eval_negatives(
    graph: TemporalGraph,
    num_candidates: int = 49,
    seed: int = 12345,
    num_events: Optional[int] = None,
) -> np.ndarray:
    """Fixed [E, num_candidates] negative matrix for MRR evaluation.

    Fixed across runs so validation curves from different parallelism
    configurations are comparable (the paper evaluates all configurations
    with the same protocol).
    """
    sampler = NegativeSampler(graph, seed=seed)
    e = num_events if num_events is not None else graph.num_events
    return sampler.sample_matrix(e, num_candidates)
