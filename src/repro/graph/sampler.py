"""Temporal neighbor sampling: the k most recent neighbors strictly before t.

TGN-attn (paper §4.0.1) uses one attention layer over the 10 most recent
neighbors of each root node.  Sampling must be *temporal*: a neighbor edge is
eligible only if its timestamp is strictly less than the query timestamp, so
no information from the future (including the event being predicted) leaks
into the embedding.

The sampler returns fixed-shape padded arrays so the downstream attention is
a dense batched matmul — the same layout TGL's CUDA sampler emits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .temporal_graph import TemporalGraph


@dataclass
class NeighborBlock:
    """Padded most-recent-k neighborhood for a batch of (node, time) queries.

    Attributes
    ----------
    roots:        [B] queried node ids
    root_times:   [B] query timestamps
    neighbors:    [B, k] neighbor node ids (0 where padded)
    edge_ids:     [B, k] event ids of the connecting edges (-1 where padded)
    times:        [B, k] edge timestamps (0 where padded)
    mask:         [B, k] True for real neighbors
    """

    roots: np.ndarray
    root_times: np.ndarray
    neighbors: np.ndarray
    edge_ids: np.ndarray
    times: np.ndarray
    mask: np.ndarray

    @property
    def batch_size(self) -> int:
        return len(self.roots)

    @property
    def k(self) -> int:
        return self.neighbors.shape[1]

    def delta_times(self) -> np.ndarray:
        """Δt of each neighbor edge relative to the query time (Eq. 5)."""
        return (self.root_times[:, None] - self.times) * self.mask

    def all_nodes(self) -> np.ndarray:
        """Unique set of root + real neighbor ids (memory fetch set)."""
        return np.unique(np.concatenate([self.roots, self.neighbors[self.mask]]))


class RecentNeighborSampler:
    """Samples the ``k`` most recent neighbors before each query time.

    The adjacency comes from :meth:`TemporalGraph.csr`, which is sorted by
    time within each node, so eligibility is one ``searchsorted`` per root.
    """

    def __init__(self, graph: TemporalGraph, k: int = 10) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.graph = graph
        self.k = k
        self._sync()

    def _sync(self) -> None:
        """(Re)load the CSR; called lazily when the graph gains events."""
        self._indptr, self._nbrs, self._eids, self._times = self.graph.csr()
        self._graph_version = self.graph.version

    def sample(self, roots: np.ndarray, times: np.ndarray) -> NeighborBlock:
        if self._graph_version != self.graph.version:
            self._sync()
        roots = np.asarray(roots, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        if roots.shape != times.shape:
            raise ValueError("roots and times must align")
        b, k = len(roots), self.k
        neighbors = np.zeros((b, k), dtype=np.int64)
        edge_ids = np.full((b, k), -1, dtype=np.int64)
        out_times = np.zeros((b, k), dtype=np.float64)
        mask = np.zeros((b, k), dtype=bool)

        indptr = self._indptr
        for i in range(b):
            node = roots[i]
            lo, hi = indptr[node], indptr[node + 1]
            if lo == hi:
                continue
            # Strictly-before-t eligibility: searchsorted 'left' on times.
            cut = lo + np.searchsorted(self._times[lo:hi], times[i], side="left")
            take = min(k, cut - lo)
            if take <= 0:
                continue
            sl = slice(cut - take, cut)  # the most recent `take` edges
            neighbors[i, :take] = self._nbrs[sl]
            edge_ids[i, :take] = self._eids[sl]
            out_times[i, :take] = self._times[sl]
            mask[i, :take] = True
        return NeighborBlock(roots, times, neighbors, edge_ids, out_times, mask)

    def captured_event_counts(
        self, batch_size: int, max_events: Optional[int] = None
    ) -> np.ndarray:
        """Per-node count of events whose mail survives batched COMB.

        Reproduces Fig. 8: with batch size ``b`` the mailbox applies
        COMB = most-recent once per batch, so for each node only its *last*
        mail within every batch window updates the memory.  The count of
        captured events for node v is the number of batches in which v
        appears at least once.  Larger batches ⇒ fewer captured events,
        hitting high-degree nodes hardest.
        """
        g = self.graph
        e = g.num_events if max_events is None else min(max_events, g.num_events)
        captured = np.zeros(g.num_nodes, dtype=np.int64)
        for start in range(0, e, batch_size):
            stop = min(start + batch_size, e)
            touched = np.unique(
                np.concatenate([g.src[start:stop], g.dst[start:stop]])
            )
            captured[touched] += 1
        return captured
