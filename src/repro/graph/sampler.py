"""Temporal neighbor sampling: the k most recent neighbors strictly before t.

TGN-attn (paper §4.0.1) uses one attention layer over the 10 most recent
neighbors of each root node.  Sampling must be *temporal*: a neighbor edge is
eligible only if its timestamp is strictly less than the query timestamp, so
no information from the future (including the event being predicted) leaks
into the embedding.

The sampler returns fixed-shape padded arrays so the downstream attention is
a dense batched matmul — the same layout TGL's CUDA sampler emits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .temporal_graph import TemporalGraph


@dataclass
class NeighborBlock:
    """Padded most-recent-k neighborhood for a batch of (node, time) queries.

    Attributes
    ----------
    roots:        [B] queried node ids
    root_times:   [B] query timestamps
    neighbors:    [B, k] neighbor node ids (0 where padded)
    edge_ids:     [B, k] event ids of the connecting edges (-1 where padded)
    times:        [B, k] edge timestamps (0 where padded)
    mask:         [B, k] True for real neighbors
    """

    roots: np.ndarray
    root_times: np.ndarray
    neighbors: np.ndarray
    edge_ids: np.ndarray
    times: np.ndarray
    mask: np.ndarray

    @property
    def batch_size(self) -> int:
        return len(self.roots)

    @property
    def k(self) -> int:
        return self.neighbors.shape[1]

    def delta_times(self) -> np.ndarray:
        """Δt of each neighbor edge relative to the query time (Eq. 5)."""
        return (self.root_times[:, None] - self.times) * self.mask

    def all_nodes(self) -> np.ndarray:
        """Unique set of root + real neighbor ids (memory fetch set)."""
        return np.unique(np.concatenate([self.roots, self.neighbors[self.mask]]))

    # Topology-pure derived arrays, cached on the block so repeated passes
    # over the same neighborhood (sub-steps, tape replays) reuse one stable
    # allocation.  Formulas mirror the attention call sites bit-for-bit.
    def _derived(self, name: str, build):
        cache = self.__dict__.setdefault("_derived_cache", {})
        arr = cache.get(name)
        if arr is None:
            arr = build()
            cache[name] = arr
        return arr

    def delta_times32(self) -> np.ndarray:
        """``delta_times()`` cast to float32 (the attention input dtype)."""
        return self._derived(
            "dt32", lambda: np.asarray(self.delta_times(), dtype=np.float32)
        )

    def attn_scale(self) -> np.ndarray:
        """[B,1,1] per-root 1/sqrt(|N_v|) attention scale."""

        def build():
            deg = np.maximum(self.mask.sum(axis=1, keepdims=True), 1).astype(
                np.float32
            )
            return (1.0 / np.sqrt(deg))[:, :, None]

        return self._derived("scale", build)

    def attn_bias(self, neg_inf: float) -> np.ndarray:
        """[B,1,k] additive mask bias (0 real / ``neg_inf`` padded)."""
        return self._derived(
            ("bias", neg_inf),
            lambda: np.where(self.mask[:, None, :], 0.0, neg_inf).astype(np.float32),
        )

    def any_nbr32(self) -> np.ndarray:
        """[B,1,1] float32 indicator that the root has any real neighbor."""
        return self._derived(
            "any", lambda: self.mask.any(axis=1).astype(np.float32)[:, None, None]
        )


class RecentNeighborSampler:
    """Samples the ``k`` most recent neighbors before each query time.

    The adjacency comes from :meth:`TemporalGraph.csr`, which is sorted by
    time within each node, so eligibility is one ``searchsorted`` per root.

    Two equivalent implementations are kept:

    * ``vectorized=True`` (default) resolves every root's eligibility cut
      with **one** global ``searchsorted`` over composite ``(node, time-rank)``
      integer keys — the CSR is node-major and time-sorted within nodes, so
      mapping each edge to ``node · (R+1) + rank(time)`` yields a globally
      sorted int64 array, and the per-root Python loop disappears.  Time
      ranks (dense indices into the sorted unique edge times) keep the keys
      exact — no float-precision hazards from mixing node ids with raw
      timestamps.
    * ``vectorized=False`` is the original per-root loop, kept as the
      reference implementation (equivalence-tested) and the pre-refactor
      baseline for ``benchmarks/test_hotpath_throughput.py``.
    """

    def __init__(self, graph: TemporalGraph, k: int = 10, vectorized: bool = True) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.graph = graph
        self.k = k
        self.vectorized = vectorized
        self._sync()

    def _sync(self) -> None:
        """(Re)load the CSR; called lazily when the graph gains events."""
        self._indptr, self._nbrs, self._eids, self._times = self.graph.csr()
        self._graph_version = self.graph.version
        # the composite-key index costs O(E log E); defer it so the loop
        # path (and streaming appends that never sample again) skip it
        self._edge_keys = None
        self._uniq_times = None
        self._rank_base = np.int64(1)

    def _ensure_index(self) -> None:
        """Build the composite-key index for the vectorized path on demand:
        edges sorted by (owner node, time rank); ranks are exact integer
        surrogates for the float timestamps."""
        if self._edge_keys is not None:
            return
        self._uniq_times = np.unique(self._times)
        ranks = np.searchsorted(self._uniq_times, self._times, side="left")
        owners = np.repeat(
            np.arange(len(self._indptr) - 1, dtype=np.int64), np.diff(self._indptr)
        )
        self._rank_base = np.int64(len(self._uniq_times) + 1)
        self._edge_keys = owners * self._rank_base + ranks

    def sample(self, roots: np.ndarray, times: np.ndarray) -> NeighborBlock:
        if self._graph_version != self.graph.version:
            self._sync()
        roots = np.asarray(roots, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        if roots.shape != times.shape:
            raise ValueError("roots and times must align")
        if self.vectorized:
            return self._sample_vectorized(roots, times)
        return self._sample_loop(roots, times)

    def _sample_vectorized(self, roots: np.ndarray, times: np.ndarray) -> NeighborBlock:
        self._ensure_index()
        k = self.k
        lo = self._indptr[roots]
        hi = self._indptr[roots + 1]
        # rank(t) = #unique edge times < t, so edge_time < t ⟺ rank(edge) < rank(t)
        q_ranks = np.searchsorted(self._uniq_times, times, side="left")
        cut = np.searchsorted(self._edge_keys, roots * self._rank_base + q_ranks, side="left")
        # queries past a node's last edge resolve beyond its segment; clamp
        cut = np.clip(cut, lo, hi)
        take = np.minimum(k, cut - lo)                      # [B]
        cols = (cut - take)[:, None] + np.arange(k)[None, :]
        mask = np.arange(k)[None, :] < take[:, None]        # [B, k]
        safe = np.where(mask, cols, 0)
        neighbors = np.where(mask, self._nbrs[safe], 0)
        edge_ids = np.where(mask, self._eids[safe], -1)
        out_times = np.where(mask, self._times[safe], 0.0)
        return NeighborBlock(
            roots,
            times,
            neighbors.astype(np.int64),
            edge_ids.astype(np.int64),
            out_times.astype(np.float64),
            mask,
        )

    def _sample_loop(self, roots: np.ndarray, times: np.ndarray) -> NeighborBlock:
        b, k = len(roots), self.k
        neighbors = np.zeros((b, k), dtype=np.int64)
        edge_ids = np.full((b, k), -1, dtype=np.int64)
        out_times = np.zeros((b, k), dtype=np.float64)
        mask = np.zeros((b, k), dtype=bool)

        indptr = self._indptr
        for i in range(b):
            node = roots[i]
            lo, hi = indptr[node], indptr[node + 1]
            if lo == hi:
                continue
            # Strictly-before-t eligibility: searchsorted 'left' on times.
            cut = lo + np.searchsorted(self._times[lo:hi], times[i], side="left")
            take = min(k, cut - lo)
            if take <= 0:
                continue
            sl = slice(cut - take, cut)  # the most recent `take` edges
            neighbors[i, :take] = self._nbrs[sl]
            edge_ids[i, :take] = self._eids[sl]
            out_times[i, :take] = self._times[sl]
            mask[i, :take] = True
        return NeighborBlock(roots, times, neighbors, edge_ids, out_times, mask)

    def captured_event_counts(
        self, batch_size: int, max_events: Optional[int] = None
    ) -> np.ndarray:
        """Per-node count of events whose mail survives batched COMB.

        Reproduces Fig. 8: with batch size ``b`` the mailbox applies
        COMB = most-recent once per batch, so for each node only its *last*
        mail within every batch window updates the memory.  The count of
        captured events for node v is the number of batches in which v
        appears at least once.  Larger batches ⇒ fewer captured events,
        hitting high-degree nodes hardest.
        """
        g = self.graph
        e = g.num_events if max_events is None else min(max_events, g.num_events)
        captured = np.zeros(g.num_nodes, dtype=np.int64)
        for start in range(0, e, batch_size):
            stop = min(start + batch_size, e)
            touched = np.unique(
                np.concatenate([g.src[start:stop], g.dst[start:stop]])
            )
            captured[touched] += 1
        return captured
