"""Chronological mini-batch scheduling.

M-TGNN training is order-constrained: batches must be processed in time
order because each batch's node-memory writes feed the next batch's reads
(paper §2.1.1).  This module produces:

* plain chronological fixed-size batches (single-GPU / epoch parallelism);
* *local* sub-batches for mini-batch parallelism (§3.2.1) — a global batch
  is split chronologically into ``i`` local batches, one per trainer;
* *segments* for memory parallelism (§3.2.3) — the training range is cut
  into ``k`` equal time segments of whole batches, and trainer r starts at
  segment r (the "reordered" schedule on the right of Fig. 7(c)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from .temporal_graph import TemporalGraph


@dataclass
class MiniBatch:
    """One chronological batch of positive events (plus metadata)."""

    index: int              # batch index within the epoch
    start: int              # first event id (inclusive)
    stop: int               # last event id (exclusive)
    src: np.ndarray
    dst: np.ndarray
    times: np.ndarray
    edge_feats: Optional[np.ndarray]
    edge_ids: np.ndarray

    @property
    def size(self) -> int:
        return self.stop - self.start

    def split_local(self, parts: int) -> List["MiniBatch"]:
        """Chronologically split into ``parts`` local batches (§3.2.1).

        "Since the global mini-batches are generated in chronological order,
        we also split them into local mini-batches chronologically."
        """
        if parts <= 0:
            raise ValueError("parts must be positive")
        bounds = np.linspace(0, self.size, parts + 1).astype(int)
        out = []
        for p in range(parts):
            lo, hi = int(bounds[p]), int(bounds[p + 1])
            out.append(
                MiniBatch(
                    index=self.index,
                    start=self.start + lo,
                    stop=self.start + hi,
                    src=self.src[lo:hi],
                    dst=self.dst[lo:hi],
                    times=self.times[lo:hi],
                    edge_feats=self.edge_feats[lo:hi] if self.edge_feats is not None else None,
                    edge_ids=self.edge_ids[lo:hi],
                )
            )
        return out


class BatchLoader:
    """Fixed-size chronological batches over an event range of a graph."""

    def __init__(
        self,
        graph: TemporalGraph,
        batch_size: int,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.graph = graph
        self.batch_size = batch_size
        self.start = start
        self.stop = graph.num_events if stop is None else stop
        if not (0 <= self.start < self.stop <= graph.num_events):
            raise ValueError(
                f"invalid range [{self.start}, {self.stop}) for {graph.num_events} events"
            )

    def __len__(self) -> int:
        span = self.stop - self.start
        return (span + self.batch_size - 1) // self.batch_size

    def batch(self, index: int) -> MiniBatch:
        lo = self.start + index * self.batch_size
        hi = min(lo + self.batch_size, self.stop)
        if lo >= hi:
            raise IndexError(f"batch {index} out of range ({len(self)} batches)")
        g = self.graph
        return MiniBatch(
            index=index,
            start=lo,
            stop=hi,
            src=g.src[lo:hi],
            dst=g.dst[lo:hi],
            times=g.timestamps[lo:hi],
            edge_feats=g.edge_feats[lo:hi] if g.edge_feats is not None else None,
            edge_ids=np.arange(lo, hi),
        )

    def __iter__(self) -> Iterator[MiniBatch]:
        for i in range(len(self)):
            yield self.batch(i)


def segment_bounds(num_batches: int, k: int) -> List[slice]:
    """Cut ``num_batches`` chronological batches into ``k`` contiguous segments.

    Segment sizes differ by at most one batch.  Memory parallelism assigns
    trainer r the rotation (r, r+1, …, r+k-1 mod k) of these segments.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if num_batches < k:
        raise ValueError(f"cannot cut {num_batches} batches into {k} segments")
    bounds = np.linspace(0, num_batches, k + 1).astype(int)
    return [slice(int(bounds[i]), int(bounds[i + 1])) for i in range(k)]


def memory_parallel_schedule(num_batches: int, k: int) -> List[List[int]]:
    """Per-round batch assignment for the reordered memory parallelism.

    Returns ``rounds`` where ``rounds[t][r]`` is the batch index trainer r
    processes at global iteration t (or -1 when that trainer has exhausted
    its current segment — segments may differ by one batch).

    Right side of Fig. 7(c): trainer r sweeps segments in the rotated order
    starting at segment r, always using its own memory copy, so memory never
    crosses trainers.
    """
    segments = segment_bounds(num_batches, k)
    per_trainer: List[List[int]] = []
    for r in range(k):
        seq: List[int] = []
        for step in range(k):
            seg = segments[(r + step) % k]
            seq.extend(range(seg.start, seg.stop))
        per_trainer.append(seq)
    rounds: List[List[int]] = []
    longest = max(len(s) for s in per_trainer)
    for t in range(longest):
        rounds.append([seq[t] if t < len(seq) else -1 for seq in per_trainer])
    return rounds


def epoch_parallel_schedule(num_batches: int, j: int) -> List[List[int]]:
    """Per-round batch assignment for reordered epoch parallelism.

    Right side of Fig. 7(b): all j trainers work on the *same* positive
    mini-batch for j consecutive iterations (each trainer pairing it with a
    different negative group), then advance.  Returns ``rounds[t][r]`` = the
    batch index everyone processes at iteration t; the negative-group index
    for trainer r at iteration t is ``(t + r) % j``.
    """
    rounds: List[List[int]] = []
    for b in range(num_batches):
        for _ in range(j):
            rounds.append([b] * j)
    return rounds
